"""JSON codec for everything the durability layer persists.

The write-ahead log and the checkpoints both store plain JSON objects;
this module is the single place that knows how to map the domain
objects — :class:`~repro.db.tuples.Fact`, :class:`~repro.db.edits.Edit`,
:class:`~repro.query.ast.Query`, answers, and the structural
answer-board keys of :func:`repro.dispatch.dedup.question_key` — onto
JSON and back **losslessly**.

Two invariants the recovery path depends on:

* round-tripping is exact: ``decode(encode(x)) == x`` for every value
  the server can produce, including negative numbers, floats, negated
  atoms, and inequality-bearing queries (pinned by
  ``tests/test_durability.py``);
* encoding is canonical: equal values encode to equal JSON, so digests
  of encoded state are stable across processes.

Constants are ``str | int | float`` (see :mod:`repro.db.tuples`), which
JSON represents natively and distinguishably; variables are tagged
objects so a constant string can never be mistaken for a variable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Hashable, Iterable, Mapping, Sequence

from ..db.database import Database
from ..db.edits import Edit, EditKind
from ..db.io import _schema_from_dict, _schema_to_dict
from ..db.tuples import Constant, Fact
from ..query.ast import Atom, Inequality, Query, Term, Var


class CodecError(ValueError):
    """A persisted object that cannot be decoded (corrupt or unknown)."""


# ---------------------------------------------------------------------------
# terms, facts, edits
# ---------------------------------------------------------------------------
def term_to_obj(term: Term) -> Any:
    """Variables become ``{"$var": name}``; constants pass through."""
    if isinstance(term, Var):
        return {"$var": term.name}
    return term


def term_from_obj(obj: Any) -> Term:
    if isinstance(obj, dict):
        if set(obj) != {"$var"}:
            raise CodecError(f"unknown term object {obj!r}")
        return Var(obj["$var"])
    if isinstance(obj, bool) or not isinstance(obj, (str, int, float)):
        raise CodecError(f"unsupported constant {obj!r}")
    return obj


def fact_to_obj(f: Fact) -> dict:
    return {"relation": f.relation, "values": list(f.values)}


def fact_from_obj(obj: dict) -> Fact:
    try:
        return Fact(obj["relation"], tuple(obj["values"]))
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed fact object {obj!r}") from error


def edit_to_obj(edit: Edit) -> dict:
    return {"op": edit.kind.value, "fact": fact_to_obj(edit.fact)}


def edit_from_obj(obj: dict) -> Edit:
    try:
        kind = EditKind(obj["op"])
    except (KeyError, ValueError) as error:
        raise CodecError(f"malformed edit object {obj!r}") from error
    return Edit(kind, fact_from_obj(obj["fact"]))


def edits_to_obj(edits: Iterable[Edit]) -> list[dict]:
    """Serialize an edit log (e.g. ``DatabaseFork.pending_edits``)."""
    return [edit_to_obj(e) for e in edits]


def edits_from_obj(objs: Iterable[dict]) -> list[Edit]:
    return [edit_from_obj(o) for o in objs]


# ---------------------------------------------------------------------------
# queries and answers
# ---------------------------------------------------------------------------
def _atom_to_obj(atom: Atom) -> dict:
    return {"relation": atom.relation, "terms": [term_to_obj(t) for t in atom.terms]}


def _atom_from_obj(obj: dict) -> Atom:
    try:
        return Atom(obj["relation"], tuple(term_from_obj(t) for t in obj["terms"]))
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed atom object {obj!r}") from error


def query_to_obj(query: Query) -> dict:
    return {
        "name": query.name,
        "head": [term_to_obj(t) for t in query.head],
        "atoms": [_atom_to_obj(a) for a in query.atoms],
        "inequalities": [
            [term_to_obj(e.left), term_to_obj(e.right)] for e in query.inequalities
        ],
        "negated": [_atom_to_obj(a) for a in query.negated_atoms],
    }


def query_from_obj(obj: dict) -> Query:
    try:
        return Query(
            head=tuple(term_from_obj(t) for t in obj["head"]),
            atoms=tuple(_atom_from_obj(a) for a in obj["atoms"]),
            inequalities=tuple(
                Inequality(term_from_obj(left), term_from_obj(right))
                for left, right in obj["inequalities"]
            ),
            name=obj["name"],
            negated_atoms=tuple(_atom_from_obj(a) for a in obj.get("negated", ())),
        )
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed query object {obj!r}") from error


def answer_to_obj(answer: Sequence[Constant]) -> list:
    return list(answer)


def answer_from_obj(obj: Sequence[Constant]) -> tuple[Constant, ...]:
    return tuple(obj)


def assignment_to_obj(assignment: Mapping[Var, Constant]) -> list[list]:
    """A (partial or total) variable assignment, sorted by variable name
    so equal assignments encode identically."""
    return [
        [var.name, value]
        for var, value in sorted(assignment.items(), key=lambda item: item[0].name)
    ]


def assignment_from_obj(obj: Iterable[Sequence]) -> dict[Var, Constant]:
    try:
        return {Var(name): value for name, value in obj}
    except (TypeError, ValueError) as error:
        raise CodecError(f"malformed assignment object {obj!r}") from error


# ---------------------------------------------------------------------------
# answer-board entries
# ---------------------------------------------------------------------------
def board_key_to_obj(key: Hashable) -> dict:
    """Encode a :func:`~repro.dispatch.dedup.question_key` identity."""
    if not isinstance(key, tuple) or not key:
        raise CodecError(f"unsupported board key {key!r}")
    kind = key[0]
    if kind == "verify_fact":
        return {"kind": kind, "fact": fact_to_obj(key[1])}
    if kind == "verify_answer":
        return {
            "kind": kind,
            "query": query_to_obj(key[1]),
            "answer": answer_to_obj(key[2]),
        }
    if kind == "verify_candidate":
        partial = sorted(key[2], key=lambda item: item[0].name)
        return {
            "kind": kind,
            "query": query_to_obj(key[1]),
            "partial": [[var.name, value] for var, value in partial],
        }
    raise CodecError(f"unsupported board key kind {kind!r}")


def board_key_from_obj(obj: dict) -> Hashable:
    try:
        kind = obj["kind"]
        if kind == "verify_fact":
            return (kind, fact_from_obj(obj["fact"]))
        if kind == "verify_answer":
            return (kind, query_from_obj(obj["query"]), answer_from_obj(obj["answer"]))
        if kind == "verify_candidate":
            return (
                kind,
                query_from_obj(obj["query"]),
                frozenset((Var(name), value) for name, value in obj["partial"]),
            )
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed board key {obj!r}") from error
    raise CodecError(f"unsupported board key kind {obj.get('kind')!r}")


def board_value_to_obj(value: Any) -> Any:
    """Board values are final verdicts — booleans today, tuples tolerated."""
    if isinstance(value, tuple):
        return {"$tuple": list(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CodecError(f"unsupported board value {value!r}")


def board_value_from_obj(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) != {"$tuple"}:
            raise CodecError(f"unknown board value object {obj!r}")
        return tuple(obj["$tuple"])
    return obj


def board_entries_to_obj(entries: Iterable[tuple[Hashable, Any]]) -> list[list]:
    return [
        [board_key_to_obj(key), board_value_to_obj(value)] for key, value in entries
    ]


def board_entries_from_obj(objs: Iterable[Sequence]) -> list[tuple[Hashable, Any]]:
    return [
        (board_key_from_obj(key), board_value_from_obj(value)) for key, value in objs
    ]


# ---------------------------------------------------------------------------
# whole databases (checkpoint payloads)
# ---------------------------------------------------------------------------
def database_to_obj(database: Database, canonical: bool = True) -> dict:
    """The checkpoint form: schema + facts, in canonical (sorted) order.

    ``canonical=False`` skips the per-fact JSON rendering and sort —
    the rows come out in set order, which is *not* stable across
    processes.  Digests must always use the canonical form; bulk
    transfers that only need a faithful copy (sharding's per-worker
    payloads) take the cheap form.
    """
    if canonical:
        rows = {
            rel.name: sorted(
                (list(f.values) for f in database.facts(rel.name)),
                key=canonical_json,
            )
            for rel in database.schema
        }
    else:
        rows = {
            rel.name: [list(f.values) for f in database.facts(rel.name)]
            for rel in database.schema
        }
    return {"schema": _schema_to_dict(database.schema), "facts": rows}


def database_from_obj(obj: dict) -> Database:
    try:
        schema = _schema_from_dict(obj["schema"])
        database = Database(schema)
        for relation, rows in obj["facts"].items():
            for row in rows:
                database.insert(Fact(relation, tuple(row)))
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed database object: {error}") from error
    return database


def canonical_json(obj: Any) -> str:
    """Deterministic rendering — the basis of every digest and checksum."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)


def database_digest(database: Database) -> str:
    """A stable content hash of the instance (schema + facts)."""
    payload = canonical_json(database_to_obj(database))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


__all__ = [
    "CodecError",
    "answer_from_obj",
    "answer_to_obj",
    "assignment_from_obj",
    "assignment_to_obj",
    "board_entries_from_obj",
    "board_entries_to_obj",
    "board_key_from_obj",
    "board_key_to_obj",
    "board_value_from_obj",
    "board_value_to_obj",
    "canonical_json",
    "database_digest",
    "database_from_obj",
    "database_to_obj",
    "edit_from_obj",
    "edit_to_obj",
    "edits_from_obj",
    "edits_to_obj",
    "fact_from_obj",
    "fact_to_obj",
    "query_from_obj",
    "query_to_obj",
    "term_from_obj",
    "term_to_obj",
]
