"""The background checkpointer.

A daemon thread that periodically snapshots the server's full state
(database + ledger + board) through
:meth:`repro.server.manager.SessionManager.checkpoint`, which truncates
the WAL.  Checkpoints bound two costs at once: recovery replay length
and log size on disk.

The thread only checkpoints when the log has grown (``min_records``
fresh records since the last snapshot), so an idle server does no
disk work.  Checkpointing is also available synchronously — the
manager calls it inline when ``checkpoint_every`` records have
accumulated, and :meth:`SessionManager.close` can take a final one.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..server.manager import SessionManager


class Checkpointer(threading.Thread):
    """Snapshot *manager* every *interval* seconds (if the log grew)."""

    def __init__(
        self,
        manager: "SessionManager",
        *,
        interval: float = 5.0,
        min_records: int = 1,
    ) -> None:
        super().__init__(name="repro-durability-checkpointer", daemon=True)
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if min_records < 1:
            raise ValueError("min_records must be >= 1")
        self.manager = manager
        self.interval = interval
        self.min_records = min_records
        self._stop_event = threading.Event()
        #: checkpoints this thread has taken (for tests/telemetry)
        self.checkpoints_taken = 0

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        store = self.manager._store
        if store is None:
            return
        if store.records_since_checkpoint >= self.min_records:
            self.manager.checkpoint()
            self.checkpoints_taken += 1

    def stop(self, *, final_checkpoint: bool = False) -> None:
        """Stop the thread; optionally take one last snapshot."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=10.0)
        if final_checkpoint:
            self._maybe_checkpoint()


__all__ = ["Checkpointer"]
