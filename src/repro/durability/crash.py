"""Crash-injection harness: kill the WAL writer at every byte boundary.

Given the directory of a *completed* durable run, the harness replays a
simulated crash at each byte offset of the recorded log: it copies the
checkpoint plus the first ``offset`` bytes of the WAL into a scratch
directory and runs :func:`repro.durability.recovery.recover` on the
truncated copy.  For each offset it asserts the recovery invariants:

* the number of replayed records equals the number of *whole* records
  that fit in the prefix — a torn record is discarded, never
  half-applied, and never takes a valid predecessor with it;
* the recovered database, ledger, and board match the state obtained by
  replaying exactly that record prefix;
* at the full length (no tear), recovery reproduces the **live**
  server's final database and ledger bit-identically (the caller passes
  them in — this anchors the matrix against the in-memory truth rather
  than against the recovery code itself).

``stride`` thins the matrix for large logs (benchmarks); tests run the
full matrix (``stride=1``), which is the ISSUE 5 acceptance gate.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..db.database import Database
from ..dispatch.dedup import AnswerBoard
from . import codec
from .recovery import apply_record, recover
from .store import CHECKPOINT_FILE, WAL_FILE, DurabilityError
from .wal import PathLike, decode_records


@dataclass
class CrashPoint:
    """One simulated crash: the log truncated to ``offset`` bytes."""

    offset: int
    expected_records: int
    recovered_records: int
    ok: bool
    detail: str = ""


@dataclass
class CrashMatrixReport:
    """The whole matrix; ``ok`` means every truncation point passed."""

    wal_bytes: int
    points: list[CrashPoint] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            f"crash matrix: {len(self.points)} truncation point(s) over "
            f"{self.wal_bytes} WAL byte(s), {len(self.failures)} failure(s)"
        )


def _prefix_states(
    checkpoint: dict, records: list[dict]
) -> list[tuple[str, dict[str, int], int]]:
    """(digest, ledger, board size) after each record prefix, 0..n.

    Computed by direct application of the decoded records — one pass,
    reused by every truncation point that lands inside the same prefix.
    """
    database = codec.database_from_obj(checkpoint["database"])
    ledger: dict[str, int] = {
        tenant: int(spent) for tenant, spent in checkpoint.get("ledger", {}).items()
    }
    board = AnswerBoard()
    for key, value in codec.board_entries_from_obj(checkpoint.get("board", ())):
        board.put(key, value)
    checkpoint_seq = int(checkpoint.get("seq", 0))
    states = [(codec.database_digest(database), dict(ledger), len(board))]
    for record in records:
        if int(record.get("seq", 0)) > checkpoint_seq:
            apply_record(record, database, ledger, board)
        states.append((codec.database_digest(database), dict(ledger), len(board)))
    return states


def run_crash_matrix(
    durable_dir: PathLike,
    *,
    live_database: Optional[Database] = None,
    live_ledger: Optional[dict[str, int]] = None,
    stride: int = 1,
    scratch_dir: Optional[PathLike] = None,
) -> CrashMatrixReport:
    """Simulate a writer crash at every ``stride``-th byte of the WAL."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    source = Path(durable_dir)
    checkpoint_path = source / CHECKPOINT_FILE
    wal_path = source / WAL_FILE
    if not checkpoint_path.exists():
        raise DurabilityError(f"{source} has no checkpoint to crash against")
    checkpoint_bytes = checkpoint_path.read_bytes()
    wal_bytes = wal_path.read_bytes() if wal_path.exists() else b""

    checkpoint = json.loads(checkpoint_bytes)
    checkpoint_seq = int(checkpoint.get("seq", 0))
    full_log = decode_records(wal_bytes)
    live_records = [
        r for r in full_log.records if int(r.get("seq", 0)) > checkpoint_seq
    ]
    states = _prefix_states(checkpoint, full_log.records)

    offsets = list(range(0, len(wal_bytes), stride))
    if not offsets or offsets[-1] != len(wal_bytes):
        offsets.append(len(wal_bytes))

    report = CrashMatrixReport(wal_bytes=len(wal_bytes))
    scratch_root = Path(scratch_dir) if scratch_dir else None
    workdir = Path(tempfile.mkdtemp(prefix="qoco-crash-", dir=scratch_root))
    try:
        crash_site = workdir / "crash"
        for offset in offsets:
            expected_records = decode_records(wal_bytes[:offset])
            expected_count = len(expected_records.records)
            if crash_site.exists():
                shutil.rmtree(crash_site)
            crash_site.mkdir()
            (crash_site / CHECKPOINT_FILE).write_bytes(checkpoint_bytes)
            (crash_site / WAL_FILE).write_bytes(wal_bytes[:offset])
            point = CrashPoint(
                offset=offset,
                expected_records=expected_count,
                recovered_records=-1,
                ok=False,
            )
            try:
                state = recover(crash_site)
            except DurabilityError as error:
                point.detail = f"recover() raised: {error}"
                report.points.append(point)
                continue
            point.recovered_records = len(state.replayed)
            digest, ledger, board_size = states[expected_count]
            problems = []
            if len(state.replayed) != len(
                [r for r in expected_records.records
                 if int(r.get("seq", 0)) > checkpoint_seq]
            ):
                problems.append(
                    f"replayed {len(state.replayed)} records, prefix holds "
                    f"{expected_count}"
                )
            if state.digest != digest:
                problems.append("database diverged from the record-prefix state")
            if state.ledger != ledger:
                problems.append(
                    f"ledger diverged: {state.ledger} != {ledger}"
                )
            if len(state.board) != board_size:
                problems.append(
                    f"board holds {len(state.board)} entries, expected {board_size}"
                )
            if offset == len(wal_bytes):
                if live_database is not None and state.digest != codec.database_digest(
                    live_database
                ):
                    problems.append("full replay diverged from the live database")
                if live_ledger is not None and state.ledger != dict(live_ledger):
                    problems.append(
                        f"full replay ledger {state.ledger} != live {live_ledger}"
                    )
                if len(live_records) != len(state.replayed):
                    problems.append("full replay dropped live records")
            point.ok = not problems
            point.detail = "; ".join(problems)
            report.points.append(point)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report


__all__ = ["CrashMatrixReport", "CrashPoint", "run_crash_matrix"]
