"""Rebuilding a durable server from its checkpoint + WAL suffix.

:func:`recover` is read-only: it loads the latest valid snapshot,
replays every WAL record whose ``seq`` the snapshot does not already
subsume, discards a torn tail, and returns the reconstructed state —
the database, the per-tenant ledger, and the answer board (so already
paid crowd verdicts are never re-bought).  :func:`recover_manager`
additionally re-attaches the directory to a fresh
:class:`~repro.server.manager.SessionManager` that keeps appending to
the same log.

Recovery invariants (pinned by ``tests/test_durability.py``):

* **prefix consistency** — for *any* byte-level truncation of the WAL,
  recovery yields exactly the state after the longest prefix of whole
  valid records (a torn record is as if it never committed);
* **completeness** — recovering an untruncated log reproduces the live
  server's final database, ledger, and board bit-identically;
* **idempotence** — records with ``seq <= checkpoint.seq`` are skipped,
  so a crash between checkpoint-rename and WAL-truncate double-applies
  nothing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from ..db.database import Database
from ..dispatch.dedup import AnswerBoard
from ..telemetry import TELEMETRY as _TELEMETRY
from . import codec
from .store import CHECKPOINT_FILE, WAL_FILE, DurabilityError, DurabilityStore
from .wal import PathLike, read_wal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..server.manager import SessionManager


@dataclass
class RecoveredState:
    """Everything :func:`recover` reconstructed from one directory."""

    database: Database
    ledger: dict[str, int] = field(default_factory=dict)
    board: AnswerBoard = field(default_factory=AnswerBoard)
    #: highest sequence number seen (checkpoint or replayed record)
    last_seq: int = 0
    checkpoint_seq: int = 0
    records_replayed: int = 0
    torn_bytes: int = 0
    #: the replayed commit/charge records, in log order
    replayed: list = field(default_factory=list)

    @property
    def digest(self) -> str:
        """Content hash of the recovered database (for comparisons)."""
        return codec.database_digest(self.database)


def _load_checkpoint(path: Path) -> dict[str, Any]:
    checkpoint_path = path / CHECKPOINT_FILE
    if not checkpoint_path.exists():
        raise DurabilityError(
            f"no {CHECKPOINT_FILE} in {path}: not a durable server directory"
        )
    try:
        with open(checkpoint_path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise DurabilityError(
            f"corrupt checkpoint at {checkpoint_path}: {error}"
        ) from error
    if not isinstance(document, dict) or document.get("type") != "checkpoint":
        raise DurabilityError(f"{checkpoint_path} is not a durability checkpoint")
    return document


def apply_record(
    record: dict[str, Any],
    database: Database,
    ledger: dict[str, int],
    board: AnswerBoard,
) -> None:
    """Apply one WAL record to the recovering state (in log order)."""
    kind = record.get("type")
    if kind == "commit":
        for edit in codec.edits_from_obj(record.get("edits", ())):
            edit.apply(database)
    elif kind != "charge":
        raise DurabilityError(f"unknown WAL record type {kind!r}")
    tenant = record.get("tenant")
    cost = int(record.get("cost", 0))
    if tenant is not None and cost:
        ledger[tenant] = ledger.get(tenant, 0) + cost
    for key, value in codec.board_entries_from_obj(record.get("board", ())):
        board.put(key, value)


def recover(path: PathLike) -> RecoveredState:
    """Rebuild the durable state under *path* (read-only).

    Loads the latest snapshot, replays the WAL suffix in sequence
    order, and silently discards a torn tail (reported via
    :attr:`RecoveredState.torn_bytes`).
    """
    start = time.perf_counter()
    path = Path(path)
    checkpoint = _load_checkpoint(path)
    database = codec.database_from_obj(checkpoint["database"])
    expected = checkpoint.get("digest")
    if expected is not None and codec.database_digest(database) != expected:
        raise DurabilityError(
            f"checkpoint digest mismatch in {path}: snapshot is corrupt"
        )
    ledger: dict[str, int] = {
        tenant: int(spent) for tenant, spent in checkpoint.get("ledger", {}).items()
    }
    board = AnswerBoard()
    for key, value in codec.board_entries_from_obj(checkpoint.get("board", ())):
        board.put(key, value)
    checkpoint_seq = int(checkpoint.get("seq", 0))

    log = read_wal(path / WAL_FILE)
    state = RecoveredState(
        database=database,
        ledger=ledger,
        board=board,
        last_seq=checkpoint_seq,
        checkpoint_seq=checkpoint_seq,
        torn_bytes=log.torn_bytes,
    )
    for record in log.records:
        seq = int(record.get("seq", 0))
        if seq <= checkpoint_seq:
            continue  # subsumed by the snapshot (crash between rename+truncate)
        apply_record(record, database, ledger, board)
        state.replayed.append(record)
        state.records_replayed += 1
        state.last_seq = max(state.last_seq, seq)
    if _TELEMETRY.enabled:
        _TELEMETRY.count("durability.recoveries")
        _TELEMETRY.observe("durability.replay_records", state.records_replayed)
        _TELEMETRY.observe("durability.recovery_s", time.perf_counter() - start)
    return state


def recover_manager(
    path: PathLike,
    *,
    sync: str = "always",
    checkpoint_every: Optional[int] = None,
    checkpoint_interval: Optional[float] = None,
    **manager_kwargs: Any,
) -> "SessionManager":
    """Recover *path* and re-attach it to a fresh session manager.

    The returned manager serves the recovered database, carries the
    recovered per-tenant ledger and answer board, and continues
    appending to the same WAL (after clipping any torn tail, so new
    records stay reachable).  Additional keyword arguments are
    forwarded to :class:`~repro.server.manager.SessionManager`.
    """
    from ..server.manager import SessionManager

    state = recover(path)
    if state.torn_bytes:
        # clip the tear so appended records follow the last valid one
        log = read_wal(Path(path) / WAL_FILE)
        os.truncate(Path(path) / WAL_FILE, log.valid_bytes)
    manager_kwargs.setdefault("share_answers", state.board)
    manager = SessionManager(state.database, **manager_kwargs)
    for tenant, spent in state.ledger.items():
        manager.ledger.charge(tenant, spent)
    store = DurabilityStore(path, sync=sync, resume=True)
    store.last_seq = state.last_seq
    store.checkpoint_seq = state.checkpoint_seq
    store.records_since_checkpoint = state.records_replayed
    manager._attach_durability(
        store,
        checkpoint_every=checkpoint_every,
        checkpoint_interval=checkpoint_interval,
    )
    return manager


__all__ = ["RecoveredState", "apply_record", "recover", "recover_manager"]
