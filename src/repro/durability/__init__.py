"""Durability for the multi-tenant cleaning server (WAL + checkpoints).

QOCO's output is a sequence of oracle-certified edits (§2, Def. 2.3)
bought with crowd answers — the cost model's scarcest resource.  This
package makes that output survive a crash: every committed session is
appended to a length-prefixed, checksummed write-ahead log *before* the
commit is acknowledged, a checkpointer periodically snapshots the full
server state and truncates the log, and recovery rebuilds the database,
per-tenant ledgers, and cross-session answer board from the latest
snapshot plus the WAL suffix, discarding torn tails.

Entry points::

    manager = repro.api.serve(db, durable_path="state/")   # durable server
    state   = repro.api.recover("state/")                  # read-only rebuild
    manager = repro.api.recover_server("state/")           # rebuild + resume

See ``docs/durability.md`` for the record format, fsync policies, and
recovery invariants; ``tests/test_durability.py`` pins the crash matrix.
"""

from .checkpoint import Checkpointer
from .crash import CrashMatrixReport, CrashPoint, run_crash_matrix
from .recovery import RecoveredState, recover, recover_manager
from .store import DurabilityError, DurabilityStore
from .wal import SYNC_POLICIES, WalError, WalReadResult, WalWriter, read_wal

__all__ = [
    "Checkpointer",
    "CrashMatrixReport",
    "CrashPoint",
    "DurabilityError",
    "DurabilityStore",
    "RecoveredState",
    "SYNC_POLICIES",
    "WalError",
    "WalReadResult",
    "WalWriter",
    "read_wal",
    "recover",
    "recover_manager",
    "run_crash_matrix",
]
