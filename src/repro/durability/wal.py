"""The write-ahead log: length-prefixed, checksummed JSONL records.

Record framing (one record per line, grep-friendly)::

    <length:08d><crc32:08x> <json-payload>\\n

``length`` counts the payload bytes (excluding header and newline) and
``crc32`` is the CRC-32 of those bytes, so a reader can detect a *torn
tail* — a record the writer was killed in the middle of — at any byte
boundary: a short header, a short payload, a missing newline, or a
checksum mismatch all mean "the log ends at the previous record".
Everything before the first invalid byte is trusted; everything after
is discarded (a torn record can never be followed by a good one,
because appends are sequential).

Durability is the writer's ``sync`` policy:

* ``"always"`` — ``flush`` + ``os.fsync`` after every append.  A commit
  acknowledged by the server is on disk (the paper's crowd answers are
  the scarce resource; this is the default).
* ``"batch"``  — ``flush`` after every append, ``fsync`` only on
  :meth:`WalWriter.sync` / checkpoint / close.  Survives process crash,
  not power loss.
* ``"never"``  — ``flush`` only, fsync left entirely to the OS.

Telemetry: ``durability.appends`` / ``durability.fsyncs`` counters and
``durability.append_bytes`` / ``durability.fsync_s`` histograms.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

from ..telemetry import TELEMETRY as _TELEMETRY
from .codec import canonical_json

PathLike = Union[str, Path]

#: fixed-width decimal length + fixed-width hex crc + one separator space
_HEADER_LEN = 8 + 8 + 1

SYNC_POLICIES = ("always", "batch", "never")


class WalError(RuntimeError):
    """An unusable write-ahead log (bad policy, unwritable path, ...)."""


def encode_record(obj: Any) -> bytes:
    """Frame one JSON-serializable record for appending."""
    payload = canonical_json(obj).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = f"{len(payload):08d}{crc:08x} ".encode("ascii")
    return header + payload + b"\n"


@dataclass
class WalReadResult:
    """Everything a reader learned from one log scan."""

    records: list = field(default_factory=list)
    #: byte offset just past the last *valid* record
    valid_bytes: int = 0
    #: bytes discarded as a torn/corrupt tail (0 = clean log)
    torn_bytes: int = 0
    #: byte offset just past each valid record, aligned with ``records``
    offsets: list = field(default_factory=list)


def decode_records(data: bytes) -> WalReadResult:
    """Parse framed records from *data*, stopping at the first tear."""
    result = WalReadResult()
    position = 0
    total = len(data)
    while position < total:
        header = data[position : position + _HEADER_LEN]
        if len(header) < _HEADER_LEN or header[16:17] != b" ":
            break
        try:
            length = int(header[:8])
            crc = int(header[8:16], 16)
        except ValueError:
            break
        end = position + _HEADER_LEN + length
        if data[end : end + 1] != b"\n":
            break  # payload or terminator missing: torn tail
        payload = data[position + _HEADER_LEN : end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        result.records.append(record)
        position = end + 1
        result.offsets.append(position)
    result.valid_bytes = position
    result.torn_bytes = total - position
    return result


def read_wal(path: PathLike) -> WalReadResult:
    """Read and validate the log at *path* (missing file = empty log)."""
    path = Path(path)
    if not path.exists():
        return WalReadResult()
    data = path.read_bytes()
    result = decode_records(data)
    if result.torn_bytes and _TELEMETRY.enabled:
        _TELEMETRY.count("durability.torn_tails")
        _TELEMETRY.observe("durability.torn_bytes", result.torn_bytes)
    return result


class WalWriter:
    """Appends framed records to one log file under a ``sync`` policy."""

    def __init__(self, path: PathLike, *, sync: str = "always") -> None:
        if sync not in SYNC_POLICIES:
            raise WalError(f"unknown sync policy {sync!r}; pick one of {SYNC_POLICIES}")
        self.path = Path(path)
        self.sync_policy = sync
        self._handle = open(self.path, "ab")
        #: framed records appended through this writer
        self.appended = 0

    def append(self, obj: Any) -> int:
        """Frame, write, flush, and (policy-permitting) fsync one record.

        Returns the number of bytes appended.  When the policy is
        ``"always"`` the record is durable before this method returns —
        the commit-acknowledgement contract of the session manager.
        """
        return self.append_frame(encode_record(obj))

    def append_frame(self, frame: bytes) -> int:
        """Append one already-framed record (see :func:`encode_record`).

        The log-shipping path frames once and hands the identical bytes
        to both the local log and the replication stream, so primary and
        follower logs stay byte-identical.
        """
        self._handle.write(frame)
        self._handle.flush()
        if self.sync_policy == "always":
            self.sync()
        self.appended += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("durability.appends")
            _TELEMETRY.observe("durability.append_bytes", len(frame))
        return len(frame)

    def sync(self) -> None:
        """Force the log to stable storage (no-op under ``"never"``)."""
        if self.sync_policy == "never":
            return
        start = time.perf_counter()
        os.fsync(self._handle.fileno())
        if _TELEMETRY.enabled:
            _TELEMETRY.count("durability.fsyncs")
            _TELEMETRY.observe("durability.fsync_s", time.perf_counter() - start)

    def truncate(self) -> None:
        """Drop every record (used after a checkpoint subsumes the log)."""
        self._handle.seek(0)
        self._handle.truncate()
        self._handle.flush()
        if self.sync_policy != "never":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        if self.sync_policy != "never":
            os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "SYNC_POLICIES",
    "WalError",
    "WalReadResult",
    "WalWriter",
    "decode_records",
    "encode_record",
    "read_wal",
]
