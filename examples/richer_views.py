"""Richer view languages: unions, negation, and COUNT aggregates.

The paper limits its exposition to conjunctive queries and lists
unions (§2, "our results extend to..."), negation and aggregates (§9,
future work) as extensions.  This example exercises all three on the
Figure 1 database:

1. a UCQ — World Cup *finalists* (winner or runner-up);
2. a negated query — teams that reached a final but *never* won one;
3. a COUNT view — titles per team.

Run with::

    python examples/richer_views.py
"""

import random

from repro import AccountingOracle, PerfectOracle
from repro.aggregates import AggregateQOCO, CountView
from repro.core import UCQCleaner, remove_wrong_answer_with_negation
from repro.datasets import figure1_dirty, figure1_ground_truth
from repro.db import Database, fact
from repro.query import evaluate, parse_query, parse_union


def show(label, value):
    print(f"  {label:<22} {value}")


def main() -> None:
    ground_truth = figure1_ground_truth()

    # ------------------------------------------------------------------
    print("1. Union of conjunctive queries — finalists (winner OR loser)")
    finalists = parse_union(
        """
        finalists(x) :- games(d, x, y, "Final", r).
        finalists(x) :- games(d, y, x, "Final", r).
        """
    )
    dirty = figure1_dirty()
    dirty.insert(fact("games", "01.01.1999", "XXX", "GER", "Final", "1:0"))
    show("dirty result:", sorted(a[0] for a in finalists.answers(dirty)))
    oracle = AccountingOracle(PerfectOracle(ground_truth))
    UCQCleaner(dirty, oracle, seed=0).clean(finalists)
    show("cleaned result:", sorted(a[0] for a in finalists.answers(dirty)))
    show("questions:", oracle.log.question_count)

    # ------------------------------------------------------------------
    print("\n2. Safe negation — finalists who never won a title")
    never_won = parse_query(
        'nearly(x) :- games(d, y, x, "Final", r), not champions(x).'
    )
    # extend both DBs with a champions relation derived from the finals
    from repro.db import RelationSchema

    def with_champions(db: Database) -> Database:
        schema = db.schema
        if "champions" not in schema:
            schema.add(RelationSchema("champions", ("team",)))
        extended = Database(schema, db)
        for game in extended.facts("games"):
            if game.values[3] == "Final":
                extended.insert(fact("champions", game.values[1]))
        return extended

    gt2 = with_champions(figure1_ground_truth())
    dirty2 = with_champions(figure1_dirty())
    show("dirty result:", sorted(a[0] for a in evaluate(never_won, dirty2)))
    show("true result:", sorted(a[0] for a in evaluate(never_won, gt2)))
    oracle2 = AccountingOracle(PerfectOracle(gt2))
    wrong = evaluate(never_won, dirty2) - evaluate(never_won, gt2)
    for answer in sorted(wrong):
        remove_wrong_answer_with_negation(
            never_won, dirty2, answer, oracle2, random.Random(0)
        )
    show("after cleanup:", sorted(a[0] for a in evaluate(never_won, dirty2)))

    # ------------------------------------------------------------------
    print("\n3. COUNT aggregate — titles per team")
    titles = parse_query('titles(x, d) :- games(d, x, y, "Final", u).')
    title_counts = CountView(titles, group_arity=1)
    dirty3 = figure1_dirty()
    show("dirty counts:", dict(sorted(title_counts.evaluate(dirty3).items())))
    oracle3 = AccountingOracle(PerfectOracle(ground_truth))
    AggregateQOCO(dirty3, oracle3, seed=0).clean(title_counts)
    show("cleaned counts:", dict(sorted(title_counts.evaluate(dirty3).items())))
    show(
        "matches truth:",
        title_counts.evaluate(dirty3) == title_counts.evaluate(ground_truth),
    )


if __name__ == "__main__":
    main()
