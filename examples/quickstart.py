"""Quickstart: clean one query result with an oracle in ~40 lines.

Recreates the paper's running example (Figure 1): a small World Cup
database where Spain appears to have won the World Cup several times,
and Italy is missing entirely.  A perfect oracle (backed by the ground
truth) guides QOCO to the minimal repair — through the stable
``repro.api`` facade.

Run with::

    python examples/quickstart.py
"""

import repro.api as qoco
from repro import PerfectOracle, evaluate, parse_query
from repro.datasets import figure1_dirty, figure1_ground_truth


def main() -> None:
    dirty = figure1_dirty()
    ground_truth = figure1_ground_truth()

    # "European teams that won the World Cup at least twice" (query Q1
    # of the paper's introduction).  repro.api also accepts the parsed
    # Query object if you prefer to build it yourself.
    query = parse_query(
        'q(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
        'teams(x, "EU"), d1 != d2.'
    )

    print("Before cleaning:")
    print(f"  Q(D)   = {sorted(evaluate(query, dirty))}")
    print(f"  Q(D_G) = {sorted(evaluate(query, ground_truth))}")

    report = qoco.clean(dirty, query, PerfectOracle(ground_truth))

    print("\nAfter cleaning:")
    print(f"  Q(D')  = {sorted(evaluate(query, dirty))}")
    print(f"\n{report.summary()}")
    print("\nEdits applied to the underlying database:")
    for edit in report.edits:
        print(f"  {edit}")
    print(f"\nCrowd interactions: {report.log.question_count} questions, "
          f"{report.total_cost} cost units")


if __name__ == "__main__":
    main()
