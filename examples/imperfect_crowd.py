"""Cleaning with an imperfect crowd (Section 6.2).

Instead of a single perfect oracle, a pool of error-prone experts
answers through the majority-vote aggregator; open answers are verified
with follow-up closed questions.  The example contrasts a single noisy
expert against 3- and 5-member crowds on the same cleaning task and
reports residual errors and crowd effort.

Run with::

    python examples/imperfect_crowd.py [error_rate]
"""

import random
import sys

from repro import (
    AccountingOracle,
    Crowd,
    ImperfectOracle,
    MajorityVote,
    QOCO,
    QOCOConfig,
    evaluate,
)
from repro.datasets import inject_result_errors, worldcup_database
from repro.experiments.reporting import render_table
from repro.workloads import Q1


def run_once(ground_truth, errors, members, seed):
    dirty = errors.dirty.copy()
    if len(members) == 1:
        backend = members[0]
        answers = None
    else:
        backend = Crowd(members, MajorityVote(len(members)))
        answers = backend.stats
    oracle = AccountingOracle(backend)
    QOCO(dirty, oracle, QOCOConfig(seed=seed, max_iterations=8)).clean(Q1)
    residual = len(evaluate(Q1, dirty) ^ evaluate(Q1, ground_truth))
    effort = answers.total if answers is not None else oracle.log.total_cost
    return residual, effort


def main() -> None:
    error_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"Experts answer incorrectly with probability {error_rate:.0%}\n")

    ground_truth = worldcup_database()
    errors = inject_result_errors(
        ground_truth, Q1, n_wrong=2, n_missing=2, rng=random.Random(11)
    )
    print(
        f"Planted {len(errors.wrong_answers)} wrong and "
        f"{len(errors.missing_answers)} missing answers in {Q1.name}(D)\n"
    )

    rows = []
    for crowd_size in (1, 3, 5):
        residuals, efforts = [], []
        for trial in range(5):
            rng = random.Random(trial * 997 + crowd_size)
            members = [
                ImperfectOracle(
                    ground_truth, error_rate, random.Random(rng.randrange(1 << 30))
                )
                for _ in range(crowd_size)
            ]
            residual, effort = run_once(ground_truth, errors, members, trial)
            residuals.append(residual)
            efforts.append(effort)
        rows.append(
            (
                crowd_size,
                f"{sum(residuals) / len(residuals):.1f}",
                f"{sum(efforts) / len(efforts):.0f}",
            )
        )

    print(render_table(
        ["crowd size", "mean residual errors", "mean crowd answers"], rows
    ))
    print(
        "\nMajority voting buys correctness with extra answers: bigger crowds"
        "\nleave fewer residual errors at higher total effort."
    )


if __name__ == "__main__":
    main()
