"""Soccer database cleaning at the paper's scale (~5000 tuples).

Generates the World Cup ground truth, dirties it with controlled noise
(80% cleanliness by default), and cleans two of the paper's evaluation
queries with each deletion strategy — printing the question-count
comparison that Figure 3 plots.

Run with::

    python examples/soccer_cleaning.py [cleanliness]
"""

import random
import sys

from repro import AccountingOracle, PerfectOracle, QOCO, QOCOConfig, evaluate
from repro.core import QOCODeletion, QOCOMinusDeletion, RandomDeletion
from repro.datasets import NoiseSpec, make_dirty, worldcup_database
from repro.datasets.noise import measure_cleanliness
from repro.experiments.reporting import render_table
from repro.workloads import Q1, Q3


def main() -> None:
    cleanliness = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    print(f"Generating World Cup ground truth and a {cleanliness:.0%}-clean copy...")
    ground_truth = worldcup_database()
    protected = set(ground_truth.facts("stages"))
    dirty_master = make_dirty(
        ground_truth,
        NoiseSpec(cleanliness=cleanliness, skewness=0.5),
        random.Random(7),
        protected=protected,
    )
    print(
        f"  |D_G| = {len(ground_truth)}, |D| = {len(dirty_master)}, "
        f"measured cleanliness = {measure_cleanliness(dirty_master, ground_truth):.2%}"
    )

    rows = []
    for query in (Q1, Q3):
        wrong = evaluate(query, dirty_master) - evaluate(query, ground_truth)
        missing = evaluate(query, ground_truth) - evaluate(query, dirty_master)
        print(
            f"\n{query.name}: {len(wrong)} wrong and {len(missing)} missing "
            f"answers in the dirty result"
        )
        for strategy in (QOCODeletion(), QOCOMinusDeletion(), RandomDeletion()):
            dirty = dirty_master.copy()
            oracle = AccountingOracle(PerfectOracle(ground_truth))
            config = QOCOConfig(deletion_strategy=strategy, seed=7, max_iterations=20)
            report = QOCO(dirty, oracle, config).clean(query)
            assert evaluate(query, dirty) == evaluate(query, ground_truth)
            rows.append(
                (
                    query.name,
                    strategy.name,
                    len(report.wrong_answers_removed),
                    len(report.missing_answers_added),
                    oracle.log.question_count,
                    oracle.log.total_cost,
                )
            )

    print("\n" + render_table(
        ["query", "strategy", "wrong fixed", "missing fixed", "questions", "cost"],
        rows,
    ))
    print("\nAll strategies converge; QOCO asks the fewest questions.")


if __name__ == "__main__":
    main()
