"""The DBGroup case study (Section 7.1): cleaning grant-report views.

A research-group database is used to generate periodic grant reports.
QOCO monitors the four report queries, discovers the seeded errors
(a fabricated keynote, wrongly-funded members, lost travel records)
and repairs the underlying tables.

Run with::

    python examples/dbgroup_report.py
"""

from repro import AccountingOracle, PerfectOracle, QOCO, QOCOConfig, evaluate
from repro.datasets import dbgroup_database
from repro.datasets.dbgroup import seeded_errors
from repro.experiments.reporting import render_table
from repro.workloads import DBGROUP_QUERIES

DESCRIPTIONS = {
    "G1": "keynotes/tutorials on ERC topics",
    "G2": "current members financed by ERC",
    "G3": "students with recent ERC-sponsored travel",
    "G4": "recent publications on crowdsourcing",
}


def main() -> None:
    ground_truth = dbgroup_database()
    dirty, corruption = seeded_errors(ground_truth)
    print(
        f"DBGroup database: {len(ground_truth)} true tuples; "
        f"{len(corruption)} corruption edits planted\n"
    )

    oracle = AccountingOracle(PerfectOracle(ground_truth))
    system = QOCO(dirty, oracle, QOCOConfig(seed=1))

    rows = []
    for name, query in DBGROUP_QUERIES.items():
        before = sorted(evaluate(query, dirty))
        report = system.clean(query)
        after = sorted(evaluate(query, dirty))
        truth = sorted(evaluate(query, ground_truth))
        status = "OK" if after == truth else "MISMATCH"
        rows.append(
            (
                name,
                DESCRIPTIONS[name],
                len(report.wrong_answers_removed),
                len(report.missing_answers_added),
                len(report.edits),
                status,
            )
        )
        if before != after:
            print(f"{name} ({DESCRIPTIONS[name]}):")
            for answer in set(map(tuple, before)) - set(map(tuple, after)):
                print(f"  removed wrong answer  {answer}")
            for answer in set(map(tuple, after)) - set(map(tuple, before)):
                print(f"  added missing answer  {answer}")
            print()

    print(render_table(
        ["query", "report view", "wrong", "missing", "edits", "result"], rows
    ))
    print(
        f"\nTotal crowd interactions: {oracle.log.question_count} questions "
        f"({oracle.log.total_cost} cost units)"
    )


if __name__ == "__main__":
    main()
