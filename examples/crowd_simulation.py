"""How long would the crowd take?  (Section 6.2 parallelism.)

Replays a real QOCO cleaning session through the discrete-event crowd
simulator: 10 experts with log-normal response latencies, 3 votes per
closed question, under sequential vs parallel dispatch.  Reproduces the
paper's timing narrative — most errors fixed early, a long tail, and a
large win for posting independent questions together.

Run with::

    python examples/crowd_simulation.py [n_experts] [median_latency_s]
"""

import random
import sys

from repro import AccountingOracle, PerfectOracle, QOCO, QOCOConfig
from repro.crowdsim import compare_policies
from repro.datasets import inject_result_errors, worldcup_database
from repro.experiments.reporting import render_table
from repro.workloads import Q3

HOUR = 3600.0


def main() -> None:
    n_experts = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    median_latency = float(sys.argv[2]) if len(sys.argv) > 2 else 120.0

    print("Cleaning Q3 (5 wrong + 5 missing answers) with a perfect oracle...")
    ground_truth = worldcup_database()
    errors = inject_result_errors(
        ground_truth, Q3, n_wrong=5, n_missing=5, rng=random.Random(42)
    )
    dirty = errors.dirty.copy()
    oracle = AccountingOracle(PerfectOracle(ground_truth))
    QOCO(dirty, oracle, QOCOConfig(seed=42)).clean(Q3)
    print(f"  {oracle.log.question_count} crowd questions were asked\n")

    print(
        f"Simulating {n_experts} experts, median response "
        f"{median_latency:.0f}s, 3 votes per closed question:\n"
    )
    timelines = compare_policies(
        oracle.log,
        n_experts=n_experts,
        votes_per_closed=3,
        median_latency=median_latency,
        seed=42,
    )

    rows = []
    for name in ("parallel", "sequential"):
        timeline = timelines[name]
        rows.append(
            (
                name,
                f"{timeline.time_to_fraction(0.6) / HOUR:.2f}h",
                f"{timeline.time_to_fraction(0.9) / HOUR:.2f}h",
                f"{timeline.makespan / HOUR:.2f}h",
            )
        )
    print(render_table(["dispatch", "60% done", "90% done", "all done"], rows))

    speedup = timelines["sequential"].makespan / timelines["parallel"].makespan
    print(
        f"\nParallel dispatch finishes {speedup:.1f}x sooner — the paper's "
        "crowd run showed\nthe same profile (60% within the first hour, "
        "everything within 3.5 hours)."
    )


if __name__ == "__main__":
    main()
