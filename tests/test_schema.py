"""Unit tests for repro.db.schema."""

import pytest

from repro.db.schema import RelationSchema, Schema, SchemaError


class TestRelationSchema:
    def test_arity(self):
        rel = RelationSchema("teams", ("team", "continent"))
        assert rel.arity == 2

    def test_str(self):
        rel = RelationSchema("teams", ("team", "continent"))
        assert str(rel) == "teams(team, continent)"

    def test_default_domains_are_distinct(self):
        rel = RelationSchema("r", ("a", "b"))
        assert rel.domains == ("r.a", "r.b")

    def test_explicit_domains(self):
        rel = RelationSchema("games", ("w", "l"), ("team", "team"))
        assert rel.domains == ("team", "team")

    def test_attribute_index(self):
        rel = RelationSchema("teams", ("team", "continent"))
        assert rel.attribute_index("continent") == 1

    def test_attribute_index_unknown(self):
        rel = RelationSchema("teams", ("team", "continent"))
        with pytest.raises(SchemaError):
            rel.attribute_index("color")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", "a"))

    def test_domain_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", "b"), ("x",))

    def test_frozen(self):
        rel = RelationSchema("r", ("a",))
        with pytest.raises(AttributeError):
            rel.name = "other"


class TestSchema:
    def test_lookup(self):
        schema = Schema([RelationSchema("r", ("a",))])
        assert schema.relation("r").name == "r"
        assert "r" in schema
        assert "s" not in schema

    def test_unknown_relation(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.relation("nope")

    def test_duplicate_relation_rejected(self):
        schema = Schema([RelationSchema("r", ("a",))])
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("r", ("b",)))

    def test_iteration_and_len(self):
        schema = Schema([RelationSchema("r", ("a",)), RelationSchema("s", ("b", "c"))])
        assert len(schema) == 2
        assert [r.name for r in schema] == ["r", "s"]

    def test_names_and_arity(self):
        schema = Schema([RelationSchema("r", ("a", "b"))])
        assert schema.names == ("r",)
        assert schema.arity("r") == 2

    def test_from_dict(self):
        schema = Schema.from_dict({"r": ["a", "b"], "s": ["c"]})
        assert schema.arity("r") == 2
        assert schema.arity("s") == 1

    def test_equality(self):
        a = Schema.from_dict({"r": ["a"]})
        b = Schema.from_dict({"r": ["a"]})
        c = Schema.from_dict({"r": ["a", "b"]})
        assert a == b
        assert a != c
