"""Tests for the qoco-experiments command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out
        assert "dbgroup" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_run_single_figure(self, capsys):
        assert main(["dbgroup"]) == 0
        out = capsys.readouterr().out
        assert "DBGroup case study" in out
        assert "completed in" in out

    def test_run_multiple_figures(self, capsys):
        assert main(["fig3f", "dbgroup"]) == 0
        out = capsys.readouterr().out
        assert "fig3f" in out
        assert "dbgroup" in out
