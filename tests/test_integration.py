"""End-to-end integration tests over the full datasets.

These exercise the whole stack — dataset generation, noise injection,
oracles, both sub-algorithms and the iterative loop — at the paper's
scale, and check that cleaning always lands on ``Q(D') = Q(D_G)``.
"""

import random

import pytest

from repro.core.qoco import QOCO, QOCOConfig
from repro.datasets.noise import NoiseSpec, inject_result_errors, make_dirty
from repro.oracle.aggregator import MajorityVote
from repro.oracle.base import AccountingOracle
from repro.oracle.crowd import Crowd
from repro.oracle.imperfect import ImperfectOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate
from repro.workloads import DBGROUP_QUERIES, SOCCER_QUERIES


class TestSoccerEndToEnd:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q5"])
    def test_mixed_cleaning_converges(self, worldcup_gt, name):
        query = SOCCER_QUERIES[name]
        errors = inject_result_errors(
            worldcup_gt, query, n_wrong=3, n_missing=3, rng=random.Random(17)
        )
        dirty = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = QOCO(dirty, oracle, QOCOConfig(seed=17)).clean(query)
        assert report.converged
        assert evaluate(query, dirty) == evaluate(query, worldcup_gt)

    def test_unstructured_noise_cleaning(self, worldcup_gt):
        # Generic (cleanliness, skew) noise rather than planted result
        # errors — the paper's default setup.
        query = SOCCER_QUERIES["Q1"]
        protected = set(worldcup_gt.facts("stages"))
        dirty = make_dirty(
            worldcup_gt,
            NoiseSpec(cleanliness=0.9, skewness=0.5),
            random.Random(23),
            protected=protected,
        )
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = QOCO(dirty, oracle, QOCOConfig(seed=23, max_iterations=20)).clean(query)
        assert evaluate(query, dirty) == evaluate(query, worldcup_gt)

    def test_cleaning_is_query_scoped(self, worldcup_gt):
        # QOCO only fixes what the query sees: the database may stay
        # dirty elsewhere (Problem 3.2's remark).
        query = SOCCER_QUERIES["Q1"]
        errors = inject_result_errors(
            worldcup_gt, query, n_wrong=2, n_missing=0, rng=random.Random(29)
        )
        dirty = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        QOCO(dirty, oracle).clean(query)
        assert evaluate(query, dirty) == evaluate(query, worldcup_gt)
        # (we make no claim D == D_G)


class TestDBGroupEndToEnd:
    def test_all_report_queries(self, dbgroup_gt):
        from repro.datasets.dbgroup import seeded_errors

        dirty, _ = seeded_errors(dbgroup_gt)
        oracle = AccountingOracle(PerfectOracle(dbgroup_gt))
        system = QOCO(dirty, oracle, QOCOConfig(seed=31))
        for name, query in DBGROUP_QUERIES.items():
            system.clean(query)
            assert evaluate(query, dirty) == evaluate(query, dbgroup_gt), name


class TestImperfectCrowdEndToEnd:
    def test_majority_crowd_mostly_converges(self, worldcup_gt):
        query = SOCCER_QUERIES["Q1"]
        errors = inject_result_errors(
            worldcup_gt, query, n_wrong=2, n_missing=2, rng=random.Random(37)
        )
        residuals = []
        for trial in range(3):
            dirty = errors.dirty.copy()
            rng = random.Random(100 + trial)
            members = [
                ImperfectOracle(worldcup_gt, 0.05, random.Random(rng.randrange(1 << 30)))
                for _ in range(3)
            ]
            crowd = Crowd(members, MajorityVote(3))
            oracle = AccountingOracle(crowd)
            QOCO(dirty, oracle, QOCOConfig(seed=trial, max_iterations=8)).clean(query)
            residuals.append(
                len(evaluate(query, dirty) ^ evaluate(query, worldcup_gt))
            )
        # majority voting keeps residual errors rare
        assert sum(residuals) <= 2

    def test_single_noisy_expert_worse_than_crowd(self, worldcup_gt):
        query = SOCCER_QUERIES["Q1"]
        errors = inject_result_errors(
            worldcup_gt, query, n_wrong=2, n_missing=2, rng=random.Random(41)
        )

        def residual_with(oracle_backend, seed):
            dirty = errors.dirty.copy()
            oracle = AccountingOracle(oracle_backend)
            QOCO(dirty, oracle, QOCOConfig(seed=seed, max_iterations=6)).clean(query)
            return len(evaluate(query, dirty) ^ evaluate(query, worldcup_gt))

        p = 0.3  # very sloppy experts make the contrast visible
        solo_residuals = sum(
            residual_with(ImperfectOracle(worldcup_gt, p, random.Random(s)), s)
            for s in range(4)
        )
        crowd_residuals = 0
        for s in range(4):
            rng = random.Random(1000 + s)
            members = [
                ImperfectOracle(worldcup_gt, p, random.Random(rng.randrange(1 << 30)))
                for _ in range(5)
            ]
            crowd_residuals += residual_with(Crowd(members, MajorityVote(5)), s)
        assert crowd_residuals <= solo_residuals
