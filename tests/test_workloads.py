"""Tests for the experiment workloads (paper queries)."""


from repro.datasets.worldcup import worldcup_schema
from repro.datasets.dbgroup import dbgroup_schema
from repro.query.evaluator import evaluate
from repro.workloads import DBGROUP_QUERIES, SOCCER_QUERIES


class TestSoccerQueries:
    def test_all_valid_against_schema(self):
        schema = worldcup_schema()
        for query in SOCCER_QUERIES.values():
            query.validate(schema)

    def test_result_sizes_span_small_to_large(self, worldcup_gt):
        # "These queries have varying result sizes, from the smallest to
        # largest" (Q1 smallest ... larger ones later).
        sizes = {
            name: len(evaluate(query, worldcup_gt))
            for name, query in SOCCER_QUERIES.items()
            if name.startswith("Q")
        }
        assert sizes["Q1"] < sizes["Q3"]
        assert all(size > 0 for size in sizes.values())

    def test_q1_semantics(self, worldcup_gt):
        # Q1: European teams who lost at least two finals.
        from repro.workloads import Q1

        answers = {a[0] for a in evaluate(Q1, worldcup_gt)}
        assert "NED" in answers  # lost 1974, 1978, 2010
        assert "HUN" in answers  # lost 1938, 1954
        assert "BRA" not in answers  # not European

    def test_q3_excludes_asian_teams(self, worldcup_gt):
        from repro.workloads import Q3

        teams = dict(f.values for f in worldcup_gt.facts("teams"))
        for (team,) in evaluate(Q3, worldcup_gt):
            assert teams[team] != "AS"

    def test_q5_requires_sa_opponent(self, worldcup_gt):
        from repro.workloads import Q5

        answers = {a[0] for a in evaluate(Q5, worldcup_gt)}
        assert "GER" in answers  # beat ARG in two finals

    def test_ex1_matches_paper_true_result(self, worldcup_gt):
        from repro.workloads import EX1

        assert evaluate(EX1, worldcup_gt) == {("GER",), ("ITA",)}

    def test_queries_have_inequalities_where_expected(self):
        from repro.workloads import Q1, Q2, Q4, Q5

        for query in (Q1, Q2, Q4, Q5):
            assert query.inequalities

    def test_q6_clubmates_scored_same_game(self, worldcup_gt):
        from repro.workloads.soccer_queries import Q6

        clubs = {}
        for f in worldcup_gt.facts("clubs"):
            clubs.setdefault(f.values[0], set()).add(f.values[1])
        for p1, p2 in evaluate(Q6, worldcup_gt):
            assert p1 != p2
            assert clubs[p1] & clubs[p2]

    def test_q7_scorers_played_for_winner(self, worldcup_gt):
        from repro.workloads.soccer_queries import Q7

        teams = {f.values[0]: f.values[1] for f in worldcup_gt.facts("players")}
        winners = {
            (f.values[0], f.values[1]) for f in worldcup_gt.facts("games")
        }
        goals = {
            (f.values[0], f.values[1]) for f in worldcup_gt.facts("goals")
        }
        for (player,) in evaluate(Q7, worldcup_gt):
            assert player in teams

    def test_q8_homegrown_champions(self, worldcup_gt):
        from repro.workloads.soccer_queries import Q8

        birthplaces = {
            f.values[0]: (f.values[1], f.values[3])
            for f in worldcup_gt.facts("players")
        }
        for (player,) in evaluate(Q8, worldcup_gt):
            team, birthplace = birthplaces[player]
            assert team == birthplace

    def test_q8_cleaning_end_to_end(self, worldcup_gt):
        import random

        from repro.core.qoco import QOCO, QOCOConfig
        from repro.datasets.noise import inject_result_errors
        from repro.oracle.base import AccountingOracle
        from repro.oracle.perfect import PerfectOracle
        from repro.workloads.soccer_queries import Q8

        errors = inject_result_errors(
            worldcup_gt, Q8, n_wrong=2, n_missing=2, rng=random.Random(77)
        )
        dirty = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = QOCO(dirty, oracle, QOCOConfig(seed=77)).clean(Q8)
        assert report.converged
        assert evaluate(Q8, dirty) == evaluate(Q8, worldcup_gt)


class TestDBGroupQueries:
    def test_all_valid_against_schema(self):
        schema = dbgroup_schema()
        for query in DBGROUP_QUERIES.values():
            query.validate(schema)

    def test_g2_selects_current_erc_members(self, dbgroup_gt):
        from repro.workloads import G2

        statuses = {
            f.values[0]: f.values[1] for f in dbgroup_gt.facts("members")
        }
        members = {
            f.values[0]: f.values[2] for f in dbgroup_gt.facts("members")
        }
        for (name,) in evaluate(G2, dbgroup_gt):
            assert members[name] == "ERC"
            assert statuses[name] in ("student", "postdoc", "faculty")

    def test_g4_topic_and_recency(self, dbgroup_gt):
        from repro.workloads import G4

        pubs = {f.values[0]: f for f in dbgroup_gt.facts("publications")}
        for (pid,) in evaluate(G4, dbgroup_gt):
            assert pubs[pid].values[3] == "crowdsourcing"
            assert pubs[pid].values[2] >= 2013
