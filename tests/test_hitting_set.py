"""Unit tests for the hitting-set machinery (Definition 4.3, Theorem 4.5)."""

import pytest

from repro.hitting.hitting_set import (
    all_minimal_hitting_sets,
    exact_minimum_hitting_set,
    greedy_hitting_set,
    is_hitting_set,
    is_minimal_hitting_set,
    most_frequent_element,
    normalize,
    singleton_elements,
    unique_minimal_hitting_set,
)


class TestBasics:
    def test_is_hitting_set(self):
        sets = [{1, 2}, {2, 3}]
        assert is_hitting_set({2}, sets)
        assert is_hitting_set({1, 3}, sets)
        assert not is_hitting_set({1}, sets)

    def test_is_minimal_hitting_set(self):
        sets = [{1, 2}, {2, 3}]
        assert is_minimal_hitting_set({2}, sets)
        assert not is_minimal_hitting_set({1, 2}, sets)  # 1 droppable
        assert is_minimal_hitting_set({1, 3}, sets)

    def test_normalize_dedups(self):
        assert len(normalize([{1}, {1}, {2}])) == 2

    def test_normalize_keeps_empty_sets(self):
        assert frozenset() in normalize([set(), {1}])

    def test_singleton_elements(self):
        assert singleton_elements([{1}, {1, 2}, {3}]) == {1, 3}


class TestUniqueMinimal:
    def test_paper_example_unique(self):
        # Example 4.4: {t1} and {t1, t2} -> unique minimal {t1}.
        assert unique_minimal_hitting_set([{1}, {1, 2}]) == {1}

    def test_paper_example_not_unique(self):
        # Example 4.4: {t1,t2} and {t1,t3} -> two minimal hitting sets.
        assert unique_minimal_hitting_set([{1, 2}, {1, 3}]) is None

    def test_empty_system(self):
        assert unique_minimal_hitting_set([]) == set()

    def test_unhittable_system(self):
        assert unique_minimal_hitting_set([set(), {1}]) is None

    def test_singletons_must_cover_everything(self):
        # Singletons {1}, {2} hit {1,2} too => unique minimal {1, 2}.
        assert unique_minimal_hitting_set([{1}, {2}, {1, 2}]) == {1, 2}

    def test_agrees_with_exhaustive_enumeration(self):
        systems = [
            [{1}, {1, 2}],
            [{1, 2}, {1, 3}],
            [{1}, {2}, {1, 2}],
            [{1, 2}, {3}],
            [{1, 2, 3}],
            [{1}, {2}, {3}],
        ]
        for sets in systems:
            expected = all_minimal_hitting_sets(sets)
            unique = unique_minimal_hitting_set(sets)
            if len(expected) == 1:
                assert unique == expected[0]
            else:
                assert unique is None


class TestGreedy:
    def test_result_is_hitting_set(self):
        sets = [{1, 2}, {2, 3}, {3, 4}, {1, 4}]
        assert is_hitting_set(greedy_hitting_set(sets), sets)

    def test_most_frequent_first(self):
        sets = [{1, 2}, {1, 3}, {1, 4}]
        assert greedy_hitting_set(sets) == {1}

    def test_unhittable_raises(self):
        with pytest.raises(ValueError):
            greedy_hitting_set([set()])

    def test_empty_system(self):
        assert greedy_hitting_set([]) == set()

    def test_most_frequent_element_deterministic(self):
        assert most_frequent_element([{1, 2}, {2}]) == 2

    def test_most_frequent_element_empty(self):
        assert most_frequent_element([]) is None


class TestExact:
    def test_optimal_on_greedy_trap(self):
        # Greedy picks the high-degree element and needs 3; optimum is 2.
        sets = [
            {0, 1}, {0, 2}, {0, 3},
            {1, 4}, {2, 4}, {3, 4},
        ]
        exact = exact_minimum_hitting_set(sets)
        assert is_hitting_set(exact, sets)
        assert len(exact) == 2

    def test_never_worse_than_greedy(self):
        import random

        rng = random.Random(5)
        for _ in range(25):
            sets = [
                frozenset(rng.sample(range(8), rng.randint(1, 4)))
                for _ in range(rng.randint(1, 6))
            ]
            exact = exact_minimum_hitting_set(sets)
            greedy = greedy_hitting_set(sets)
            assert is_hitting_set(exact, sets)
            assert len(exact) <= len(greedy)

    def test_unhittable_raises(self):
        with pytest.raises(ValueError):
            exact_minimum_hitting_set([frozenset()])


class TestAllMinimal:
    def test_example(self):
        minimal = all_minimal_hitting_sets([{1, 2}, {1, 3}])
        assert {1} in minimal
        assert {2, 3} in minimal
        assert len(minimal) == 2

    def test_every_result_minimal(self):
        sets = [{1, 2}, {2, 3}, {1, 3}]
        for candidate in all_minimal_hitting_sets(sets):
            assert is_minimal_hitting_set(candidate, sets)

    def test_empty_system(self):
        assert all_minimal_hitting_sets([]) == [set()]

    def test_unhittable(self):
        assert all_minimal_hitting_sets([set()]) == []
