"""Tests for the crowd latency/parallelism simulator."""

import random

import pytest

from repro.crowdsim.simulator import (
    CrowdSimulator,
    compare_policies,
    lognormal_latency,
)
from repro.oracle.questions import InteractionLog, QuestionKind


def make_log(spec):
    """Build a log from (kind, count) pairs."""
    log = InteractionLog()
    for kind, count in spec:
        for _ in range(count):
            log.record(kind, 1)
    return log


@pytest.fixture
def mixed_log():
    return make_log(
        [
            (QuestionKind.VERIFY_ANSWER, 10),
            (QuestionKind.VERIFY_FACT, 5),
            (QuestionKind.COMPLETE_ASSIGNMENT, 2),
            (QuestionKind.VERIFY_FACT, 3),
        ]
    )


class TestSimulatorBasics:
    def test_every_question_completed(self, mixed_log):
        sim = CrowdSimulator(rng=random.Random(0))
        timeline = sim.replay(mixed_log)
        assert len(timeline.completions) == mixed_log.question_count

    def test_closed_questions_get_vote_sample(self, mixed_log):
        sim = CrowdSimulator(votes_per_closed=3, rng=random.Random(0))
        timeline = sim.replay(mixed_log)
        closed = 10 + 5 + 3
        open_q = 2
        assert len(timeline.answers) == closed * 3 + open_q

    def test_deterministic_given_seed(self, mixed_log):
        a = CrowdSimulator(rng=random.Random(7)).replay(mixed_log)
        b = CrowdSimulator(rng=random.Random(7)).replay(mixed_log)
        assert a.makespan == b.makespan

    def test_empty_log(self):
        timeline = CrowdSimulator(rng=random.Random(0)).replay(InteractionLog())
        assert timeline.makespan == 0.0
        assert timeline.completion_fraction(0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CrowdSimulator(n_experts=0)
        with pytest.raises(ValueError):
            CrowdSimulator(votes_per_closed=0)


class TestPolicies:
    def test_parallel_not_slower(self, mixed_log):
        timelines = compare_policies(mixed_log, seed=3)
        assert timelines["parallel"].makespan <= timelines["sequential"].makespan

    def test_parallel_speedup_substantial_for_wide_batches(self):
        log = make_log([(QuestionKind.VERIFY_ANSWER, 40)])
        timelines = compare_policies(log, n_experts=20, seed=5)
        assert timelines["parallel"].makespan < 0.5 * timelines["sequential"].makespan

    def test_more_experts_never_hurt(self):
        log = make_log([(QuestionKind.VERIFY_ANSWER, 30)])
        # latency draws differ between pool sizes, so compare statistically
        # over a few seeds
        totals_small, totals_big = 0.0, 0.0
        for seed in range(5):
            totals_small += CrowdSimulator(
                n_experts=3, rng=random.Random(seed)
            ).replay(log).makespan
            totals_big += CrowdSimulator(
                n_experts=30, rng=random.Random(seed)
            ).replay(log).makespan
        assert totals_big < totals_small

    def test_dependent_batches_serialize(self):
        # alternating kinds force one-question batches even in parallel mode
        log = make_log(
            [
                (QuestionKind.VERIFY_FACT, 1),
                (QuestionKind.COMPLETE_ASSIGNMENT, 1),
                (QuestionKind.VERIFY_FACT, 1),
                (QuestionKind.COMPLETE_ASSIGNMENT, 1),
            ]
        )
        timelines = compare_policies(log, seed=2)
        assert timelines["parallel"].makespan == pytest.approx(
            timelines["sequential"].makespan
        )


class TestTimeline:
    def test_completion_fraction_monotone(self, mixed_log):
        timeline = CrowdSimulator(rng=random.Random(0)).replay(mixed_log)
        times = [timeline.makespan * f for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
        fractions = [timeline.completion_fraction(t) for t in times]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_time_to_fraction(self, mixed_log):
        timeline = CrowdSimulator(rng=random.Random(0)).replay(mixed_log)
        t60 = timeline.time_to_fraction(0.6)
        t100 = timeline.time_to_fraction(1.0)
        assert 0 < t60 <= t100 == timeline.makespan
        assert timeline.completion_fraction(t60) >= 0.6

    def test_time_to_fraction_validation(self, mixed_log):
        timeline = CrowdSimulator(rng=random.Random(0)).replay(mixed_log)
        with pytest.raises(ValueError):
            timeline.time_to_fraction(0.0)

    def test_latency_sampler_positive(self):
        sampler = lognormal_latency(60.0)
        rng = random.Random(0)
        assert all(sampler(rng) > 0 for _ in range(100))


class TestEndToEndReplay:
    def test_replay_actual_cleaning_log(self, fig1_dirty, fig1_gt):
        from repro.core.qoco import QOCO
        from repro.oracle.base import AccountingOracle
        from repro.oracle.perfect import PerfectOracle
        from repro.workloads import EX1

        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        QOCO(fig1_dirty, oracle).clean(EX1)
        timelines = compare_policies(oracle.log, n_experts=10, seed=11)
        assert timelines["parallel"].makespan <= timelines["sequential"].makespan
        assert len(timelines["parallel"].completions) == oracle.log.question_count
