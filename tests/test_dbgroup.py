"""Tests for the DBGroup generator and its seeded error profile."""

import pytest

from repro.datasets.dbgroup import (
    DBGroupConfig,
    dbgroup_database,
    dbgroup_schema,
    seeded_errors,
)
from repro.query.evaluator import evaluate
from repro.workloads import DBGROUP_QUERIES, G1, G2, G3


@pytest.fixture(scope="module")
def gt():
    return dbgroup_database()


class TestGenerator:
    def test_paper_scale(self, gt):
        # "currently contains around 2000 tuples"
        assert 1400 <= len(gt) <= 2600

    def test_deterministic(self):
        assert dbgroup_database() == dbgroup_database()

    def test_config_scales(self):
        small = dbgroup_database(DBGroupConfig(n_publications=50, n_trips=20))
        assert len(small) < len(dbgroup_database())

    def test_all_relations_populated(self, gt):
        for relation in dbgroup_schema().names:
            assert gt.size(relation) > 0

    def test_authors_are_members(self, gt):
        members = {f.values[0] for f in gt.facts("members")}
        for authored in gt.facts("authored"):
            assert authored.values[0] in members

    def test_publication_ids_unique(self, gt):
        pids = [f.values[0] for f in gt.facts("publications")]
        assert len(pids) == len(set(pids))

    def test_every_query_nonempty_on_ground_truth(self, gt):
        for name, query in DBGROUP_QUERIES.items():
            assert evaluate(query, gt), f"{name} has no true answers"


class TestSeededErrors:
    def test_errors_change_results(self, gt):
        dirty, corruption = seeded_errors(gt)
        assert corruption  # something was planted
        changed = [
            name
            for name, query in DBGROUP_QUERIES.items()
            if evaluate(query, dirty) != evaluate(query, gt)
        ]
        assert "G1" in changed  # fabricated + removed keynote
        assert "G2" in changed  # wrongly ERC-funded members
        assert "G3" in changed  # removed trips

    def test_wrong_and_missing_both_present(self, gt):
        dirty, _ = seeded_errors(gt)
        g2_dirty, g2_true = evaluate(G2, dirty), evaluate(G2, gt)
        assert g2_dirty - g2_true  # wrong answers
        g3_dirty, g3_true = evaluate(G3, dirty), evaluate(G3, gt)
        assert g3_true - g3_dirty  # missing answers

    def test_corruption_edits_applied(self, gt):
        dirty, corruption = seeded_errors(gt)
        # Undoing the corruption restores the ground truth exactly.
        restored = dirty.copy()
        for edit in corruption:
            edit.inverted().apply(restored)
        assert restored == gt

    def test_deterministic(self, gt):
        a, _ = seeded_errors(gt, seed=5)
        b, _ = seeded_errors(gt, seed=5)
        assert a == b

    def test_ground_truth_untouched(self, gt):
        size_before = len(gt)
        seeded_errors(gt)
        assert len(gt) == size_before
