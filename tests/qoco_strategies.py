"""Shared hypothesis strategies for randomized schema/instance/query tests.

Extracted from ``test_telemetry_differential.py`` so the differential
harnesses (telemetry, incremental maintenance) draw from one pool:
a small fixed schema, random instances over a five-constant domain, and
random conjunctive queries with optional inequalities and — where the
subject under test supports them — safely negated atoms.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.query.ast import Atom, Inequality, Query, Var

CONSTANTS = ["a", "b", "c", "d", "e"]
VARIABLES = [Var(name) for name in ("x", "y", "z", "w")]

#: Variables reserved for negated-atom local wildcards (never used in a
#: positive body atom, so they stay existential under the negation).
#: Partitioned per negated atom: a local wildcard may not be shared
#: between two negated atoms (``Query`` validation), so atom *i* draws
#: only from ``LOCAL_POOLS[i]``.
LOCAL_POOLS = (
    [Var("l1"), Var("l2")],
    [Var("l3"), Var("l4")],
)
LOCAL_VARIABLES = LOCAL_POOLS[0]

SCHEMA = Schema(
    [
        RelationSchema("r", ("p", "q")),
        RelationSchema("s", ("p",)),
        RelationSchema("t", ("p", "q", "u")),
    ]
)

ARITIES = {"r": 2, "s": 1, "t": 3}


@st.composite
def databases(draw, max_size: int = 20):
    facts = draw(
        st.lists(
            st.sampled_from(["r", "s", "t"]).flatmap(
                lambda rel: st.tuples(
                    st.just(rel),
                    st.tuples(*[st.sampled_from(CONSTANTS)] * ARITIES[rel]),
                )
            ),
            max_size=max_size,
        )
    )
    return Database(SCHEMA, [Fact(rel, values) for rel, values in facts])


@st.composite
def facts(draw):
    """One random fact over the shared schema (for edit sequences)."""
    rel = draw(st.sampled_from(["r", "s", "t"]))
    values = tuple(
        draw(st.sampled_from(CONSTANTS)) for _ in range(ARITIES[rel])
    )
    return Fact(rel, values)


@st.composite
def queries(
    draw,
    negation: bool = False,
    relations=("r", "s", "t"),
    name="q",
    min_inequalities: int = 0,
    min_negated: int = 0,
):
    """A random CQ over *relations* (arity = that of the base r/s/t
    relation the name starts with, so namespaced tenant relations like
    ``r3``/``s3`` draw structurally identical queries).

    Inequalities (0-2 per query, at least *min_inequalities*) cover both
    AST shapes — variable != variable and variable != constant — and a
    single-variable body can still draw the constant form.  With
    *negation* on, 0-2 safely negated atoms are drawn (at least
    *min_negated*), each with its own local-wildcard pool so wildcards
    are never shared across negated atoms; shapes range over
    shared-variable, purely-local-wildcard and constant-only negations.
    """
    relations = list(relations)
    n_atoms = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n_atoms):
        rel = draw(st.sampled_from(relations))
        terms = tuple(
            draw(st.sampled_from(VARIABLES + CONSTANTS))  # type: ignore[operator]
            for _ in range(ARITIES[rel[0]])
        )
        atoms.append(Atom(rel, terms))
    body_vars = sorted(set().union(*(a.variables() for a in atoms)), key=str)
    if not body_vars:
        unary = next(r for r in relations if r.startswith("s"))
        atoms.append(Atom(unary, (Var("x"),)))
        body_vars = [Var("x")]
    head = tuple(
        draw(st.sampled_from(body_vars))
        for _ in range(draw(st.integers(1, min(2, len(body_vars)))))
    )
    inequalities = []
    for _ in range(draw(st.integers(min_inequalities, 2))):
        left = draw(st.sampled_from(body_vars))
        right = draw(
            st.sampled_from(
                (body_vars if len(body_vars) >= 2 else [])
                + CONSTANTS  # type: ignore[operator]
            )
        )
        if left != right:
            inequalities.append(Inequality(left, right))
    negated_atoms = []
    if negation:
        for pool in LOCAL_POOLS[: draw(st.integers(min_negated, len(LOCAL_POOLS)))]:
            rel = draw(st.sampled_from(relations))
            terms = tuple(
                draw(
                    st.sampled_from(
                        body_vars + pool + CONSTANTS  # type: ignore[operator]
                    )
                )
                for _ in range(ARITIES[rel[0]])
            )
            negated_atoms.append(Atom(rel, terms))
    return Query(
        head, tuple(atoms), tuple(inequalities), name, tuple(negated_atoms)
    )


# ----------------------------------------------------------------------
# multi-tenant workloads (repro.server)
# ----------------------------------------------------------------------
def tenant_relations(tenant: int) -> tuple[str, str]:
    """The private relation namespace of one tenant."""
    return (f"r{tenant}", f"s{tenant}")


def tenant_schema(n_tenants: int) -> Schema:
    """One shared schema with *n_tenants* disjoint relation namespaces."""
    relations = []
    for tenant in range(n_tenants):
        r_name, s_name = tenant_relations(tenant)
        relations.append(RelationSchema(r_name, ("p", "q")))
        relations.append(RelationSchema(s_name, ("p",)))
    return Schema(relations)


@st.composite
def tenant_workloads(draw, n_tenants: int = 8, max_facts: int = 8):
    """Disjoint per-tenant workloads over one shared database.

    Returns ``(ground_truth, dirty, queries)``: every tenant owns a
    private relation pair, so the tenants' cleaning edits are disjoint
    by construction — the property the server's commit protocol must
    preserve under any interleaving.
    """
    schema = tenant_schema(n_tenants)
    gt_facts: list[Fact] = []
    dirty_facts: list[Fact] = []
    tenant_queries = []
    for tenant in range(n_tenants):
        r_name, s_name = tenant_relations(tenant)
        arities = {r_name: 2, s_name: 1}
        for rel, arity in arities.items():
            values = draw(
                st.lists(
                    st.tuples(*[st.sampled_from(CONSTANTS)] * arity),
                    max_size=max_facts,
                )
            )
            gt_facts.extend(Fact(rel, v) for v in values)
            # the dirty copy drops ~half and invents a few extras
            for v in values:
                if draw(st.booleans()):
                    dirty_facts.append(Fact(rel, v))
            extras = draw(
                st.lists(
                    st.tuples(*[st.sampled_from(CONSTANTS)] * arity),
                    max_size=2,
                )
            )
            dirty_facts.extend(Fact(rel, v) for v in extras)
        tenant_queries.append(
            draw(
                queries(
                    relations=(r_name, s_name), name=f"q{tenant}"
                )
            )
        )
    return (
        Database(schema, gt_facts),
        Database(schema, dirty_facts),
        tenant_queries,
    )
