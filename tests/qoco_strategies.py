"""Shared hypothesis strategies for randomized schema/instance/query tests.

Extracted from ``test_telemetry_differential.py`` so the differential
harnesses (telemetry, incremental maintenance) draw from one pool:
a small fixed schema, random instances over a five-constant domain, and
random conjunctive queries with optional inequalities and — where the
subject under test supports them — safely negated atoms.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.query.ast import Atom, Inequality, Query, Var

CONSTANTS = ["a", "b", "c", "d", "e"]
VARIABLES = [Var(name) for name in ("x", "y", "z", "w")]

#: Variables reserved for negated-atom local wildcards (never used in a
#: positive body atom, so they stay existential under the negation).
LOCAL_VARIABLES = [Var(name) for name in ("l1", "l2")]

SCHEMA = Schema(
    [
        RelationSchema("r", ("p", "q")),
        RelationSchema("s", ("p",)),
        RelationSchema("t", ("p", "q", "u")),
    ]
)

ARITIES = {"r": 2, "s": 1, "t": 3}


@st.composite
def databases(draw, max_size: int = 20):
    facts = draw(
        st.lists(
            st.sampled_from(["r", "s", "t"]).flatmap(
                lambda rel: st.tuples(
                    st.just(rel),
                    st.tuples(*[st.sampled_from(CONSTANTS)] * ARITIES[rel]),
                )
            ),
            max_size=max_size,
        )
    )
    return Database(SCHEMA, [Fact(rel, values) for rel, values in facts])


@st.composite
def facts(draw):
    """One random fact over the shared schema (for edit sequences)."""
    rel = draw(st.sampled_from(["r", "s", "t"]))
    values = tuple(
        draw(st.sampled_from(CONSTANTS)) for _ in range(ARITIES[rel])
    )
    return Fact(rel, values)


@st.composite
def queries(draw, negation: bool = False):
    n_atoms = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n_atoms):
        rel = draw(st.sampled_from(["r", "s", "t"]))
        terms = tuple(
            draw(st.sampled_from(VARIABLES + CONSTANTS))  # type: ignore[operator]
            for _ in range(ARITIES[rel])
        )
        atoms.append(Atom(rel, terms))
    body_vars = sorted(set().union(*(a.variables() for a in atoms)), key=str)
    if not body_vars:
        atoms.append(Atom("s", (Var("x"),)))
        body_vars = [Var("x")]
    head = tuple(
        draw(st.sampled_from(body_vars))
        for _ in range(draw(st.integers(1, min(2, len(body_vars)))))
    )
    inequalities = []
    if len(body_vars) >= 2 and draw(st.booleans()):
        left, right = draw(st.sampled_from(body_vars)), draw(
            st.sampled_from(body_vars + CONSTANTS)  # type: ignore[operator]
        )
        if left != right:
            inequalities.append(Inequality(left, right))
    negated_atoms = []
    if negation and draw(st.booleans()):
        rel = draw(st.sampled_from(["r", "s", "t"]))
        terms = tuple(
            draw(
                st.sampled_from(
                    body_vars + LOCAL_VARIABLES + CONSTANTS  # type: ignore[operator]
                )
            )
            for _ in range(ARITIES[rel])
        )
        negated_atoms.append(Atom(rel, terms))
    return Query(
        head, tuple(atoms), tuple(inequalities), "q", tuple(negated_atoms)
    )
