"""Differential contracts for the dispatch engine.

Three equivalences tie the live engine to already-validated components:

1. **Dispatch ≡ synchronous loop** — a fault-free, unbudgeted dispatch
   run produces the same edits, the same final database, and the same
   interaction log (question kinds, costs, details, order) as
   ``ParallelQOCO`` answering synchronously.
2. **Dispatch ≡ replay** — the engine's timeline (every worker
   assignment and question completion) is bit-identical to
   ``CrowdSimulator.replay`` of the logged interactions with the same
   pool size, vote count, latency model, and seed: the live engine and
   the §6.2 post-hoc model are the same timing process.
3. **Faults don't change the outcome** — a fault-injected run with
   retries reaches the same final database as the synchronous loop on
   the Soccer workload (the ISSUE 3 acceptance gate).

The Soccer instance is built so cross-task deduplication provably
fires: a "hub" team (``YUG``, the lexicographically last EU team, so
the greedy tie-break picks its ``teams`` fact first) gains fabricated
games against several EU partners.  Every wrong ``Q2`` answer's
witness then contains ``teams(YUG, EU)``, and all removal tasks ask it
in the same round.
"""

from __future__ import annotations

import random

import pytest

from repro.core.parallel import ParallelQOCO
from repro.crowdsim import CrowdSimulator, lognormal_latency
from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.db.tuples import fact
from repro.dispatch import Budget, FaultModel, RetryPolicy, dispatch_clean
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import Evaluator
from repro.telemetry import telemetry_session
from repro.workloads import EX1, Q2

SEED = 5
N_WORKERS = 6
VOTES = 3
HUB = "YUG"
PARTNERS = ("AUT", "BEL", "WAL")
SCALE = WorldCupConfig(players_per_team=6, group_games_per_cup=4)


@pytest.fixture(scope="module")
def soccer_gt():
    return worldcup_database(SCALE)


@pytest.fixture
def soccer_dirty(soccer_gt):
    """The hub-team instance: 2 fabricated games per (YUG, partner)."""
    dirty = soccer_gt.copy()
    for i, partner in enumerate(PARTNERS):
        for j in (1, 2):
            dirty.insert(
                fact(
                    "games", f"0{j}.01.19{70 + i}", HUB, partner,
                    "Group", f"{j}:0",
                )
            )
    return dirty


def sync_clean(gt, dirty, query):
    """The synchronous reference run (same seed as the dispatch runs)."""
    db = dirty.copy()
    report = ParallelQOCO(
        db, AccountingOracle(PerfectOracle(gt)), seed=SEED
    ).clean(query)
    return db, report


def dispatch(gt, dirty, query, **kwargs):
    db = dirty.copy()
    kwargs.setdefault("votes_per_closed", VOTES)
    kwargs.setdefault("latency", lognormal_latency(120.0))
    kwargs.setdefault("rng", random.Random(7))
    kwargs.setdefault("seed", SEED)
    report, engine = dispatch_clean(
        db, query, [PerfectOracle(gt)] * N_WORKERS, **kwargs
    )
    return db, report, engine


class TestDispatchEqualsSynchronous:
    def test_figure1_run_is_identical(self, fig1_gt, fig1_dirty):
        sync_db, sync_report = sync_clean(fig1_gt, fig1_dirty, EX1)
        db, report, engine = dispatch(fig1_gt, fig1_dirty, EX1)
        assert not db.symmetric_difference(sync_db)
        assert [(e.kind.value, repr(e.fact)) for e in report.edits] == [
            (e.kind.value, repr(e.fact)) for e in sync_report.edits
        ]
        assert report.log.to_dicts() == sync_report.log.to_dicts()
        assert report.rounds == sync_report.rounds
        assert report.iterations == sync_report.iterations
        assert report.converged and sync_report.converged
        # only the wall-clock dimension differs: sync has none
        assert sync_report.wall_clock == 0.0
        assert report.wall_clock == engine.wall_clock > 0.0

    def test_soccer_run_is_identical(self, soccer_gt, soccer_dirty):
        sync_db, sync_report = sync_clean(soccer_gt, soccer_dirty, Q2)
        db, report, engine = dispatch(soccer_gt, soccer_dirty, Q2)
        assert not db.symmetric_difference(sync_db)
        assert report.log.to_dicts() == sync_report.log.to_dicts()
        assert sorted(map(repr, report.wrong_answers_removed)) == sorted(
            map(repr, sync_report.wrong_answers_removed)
        )
        assert Evaluator(Q2, db).answers() == Evaluator(Q2, soccer_gt).answers()


class TestDispatchEqualsReplay:
    def _assert_timeline_parity(self, gt, dirty, query):
        _, report, engine = dispatch(
            gt, dirty, query, rng=random.Random(7)
        )
        replay = CrowdSimulator(
            n_experts=N_WORKERS,
            votes_per_closed=VOTES,
            latency=lognormal_latency(120.0),
            rng=random.Random(7),
        ).replay(report.log, parallel=True)
        assert replay.answers == engine.timeline.answers
        assert replay.completions == engine.timeline.completions
        assert replay.makespan == engine.wall_clock == report.wall_clock

    def test_figure1_timeline_bit_identical(self, fig1_gt, fig1_dirty):
        self._assert_timeline_parity(fig1_gt, fig1_dirty, EX1)

    def test_soccer_timeline_bit_identical(self, soccer_gt, soccer_dirty):
        self._assert_timeline_parity(soccer_gt, soccer_dirty, Q2)


class TestDeduplication:
    def test_dedup_strictly_cheaper_than_naive(self, soccer_gt, soccer_dirty):
        sync_db, _ = sync_clean(soccer_gt, soccer_dirty, Q2)
        db_dedup, report_dedup, engine_dedup = dispatch(
            soccer_gt, soccer_dirty, Q2, dedup=True
        )
        db_naive, report_naive, engine_naive = dispatch(
            soccer_gt, soccer_dirty, Q2, dedup=False
        )
        # the hub fact is asked once by every removal task concurrently
        assert engine_dedup.stats.dedup_coalesced >= len(PARTNERS) - 1
        assert (
            engine_dedup.stats.member_answers
            < engine_naive.stats.member_answers
        )
        assert report_dedup.total_cost < report_naive.total_cost
        # cheaper, not different: both reach the synchronous database
        assert not db_dedup.symmetric_difference(sync_db)
        assert not db_naive.symmetric_difference(sync_db)


class TestFaultedRuns:
    def test_faulted_soccer_run_reaches_sync_database(
        self, soccer_gt, soccer_dirty
    ):
        """The acceptance gate: dropouts + no-shows + late answers under
        a timeout, with retries enabled, reach the same final database
        as the synchronous loop."""
        sync_db, _ = sync_clean(soccer_gt, soccer_dirty, Q2)
        db, report, engine = dispatch(
            soccer_gt, soccer_dirty, Q2,
            faults=FaultModel(
                no_show_rate=0.2, dropout_rate=0.02, late_rate=0.2,
                rng=random.Random(3),
            ),
            retry=RetryPolicy(timeout=300.0, max_retries=6),
        )
        assert not db.symmetric_difference(sync_db)
        assert report.converged
        # the faults actually happened and were retried around
        assert engine.stats.no_shows > 0
        assert engine.stats.retries > 0

    def test_budgeted_soccer_run_degrades_without_hanging(
        self, soccer_gt, soccer_dirty
    ):
        db, report, engine = dispatch(
            soccer_gt, soccer_dirty, Q2, budget=Budget(max_cost=3)
        )
        assert not report.converged
        assert engine.stats.budget_denied > 0
        assert report.total_cost <= 3


class TestTelemetry:
    def test_dispatch_counters_are_emitted(self, fig1_gt, fig1_dirty):
        with telemetry_session() as (hub, _):
            _, report, engine = dispatch(fig1_gt, fig1_dirty, EX1)
            counters = hub.counters()
        assert counters["dispatch.questions"] == engine.stats.questions
        assert counters["dispatch.member_answers"] == engine.stats.member_answers
        assert counters["oracle.cost.total"] == report.total_cost
        assert counters["parallel.rounds"] == report.rounds
