"""Robustness and failure-injection tests.

Exercise the system under misbehaving oracles, mid-run exceptions, and
edge-shaped inputs, checking that the database is never left
inconsistent (every applied edit is recorded) and the audit trail
round-trips.
"""

import random

import pytest

from repro.core.deletion import QOCODeletion, crowd_remove_wrong_answer
from repro.core.insertion import crowd_add_missing_answer
from repro.core.qoco import QOCO, QOCOConfig
from repro.core.split import ProvenanceSplit
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import InteractionLog, QuestionKind
from repro.query.evaluator import evaluate
from repro.workloads import EX1, EX2


class FlakyOracle(PerfectOracle):
    """Raises after a configurable number of questions."""

    def __init__(self, ground_truth, fail_after):
        super().__init__(ground_truth)
        self.fail_after = fail_after
        self.asked = 0

    def _tick(self):
        self.asked += 1
        if self.asked > self.fail_after:
            raise ConnectionError("crowd platform went away")

    def verify_fact(self, fact):
        self._tick()
        return super().verify_fact(fact)

    def verify_answer(self, query, answer):
        self._tick()
        return super().verify_answer(query, answer)

    def verify_candidate(self, query, partial):
        self._tick()
        return super().verify_candidate(query, partial)


class TestMidRunFailures:
    def test_exception_propagates_cleanly(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(FlakyOracle(fig1_gt, fail_after=1))
        with pytest.raises(ConnectionError):
            crowd_remove_wrong_answer(
                EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
            )

    def test_database_consistent_after_failure(self, fig1_dirty, fig1_gt):
        # Apply-at-end semantics: a deletion run that dies mid-questioning
        # leaves the database untouched.
        before = fig1_dirty.copy()
        oracle = AccountingOracle(FlakyOracle(fig1_gt, fail_after=2))
        with pytest.raises(ConnectionError):
            crowd_remove_wrong_answer(
                EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
            )
        assert fig1_dirty == before

    def test_resume_after_failure(self, fig1_dirty, fig1_gt):
        # A fresh oracle continues where the flaky one left off; answers
        # already collected are re-asked (the log belongs to the oracle).
        oracle = AccountingOracle(FlakyOracle(fig1_gt, fail_after=2))
        with pytest.raises(ConnectionError):
            crowd_remove_wrong_answer(
                EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
            )
        retry = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), retry, QOCODeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)

    def test_insertion_failure_keeps_partial_inserts_recorded(
        self, fig1_dirty, fig1_gt
    ):
        # Insertion applies ground atoms before the crowd loop; if the
        # crowd dies, those inserts happened and were true anyway.
        oracle = AccountingOracle(FlakyOracle(fig1_gt, fail_after=0))
        with pytest.raises(ConnectionError):
            crowd_add_missing_answer(
                EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
                ProvenanceSplit(), random.Random(0),
            )
        # any fact inserted so far is true
        for f in fig1_dirty:
            if f not in fig1_gt:
                # pre-existing dirty facts only — nothing new and false
                assert f in figure1_false_facts()


def figure1_false_facts():
    from repro.datasets.figure1 import FALSE_FINALS, FALSE_GOALS, FALSE_TEAMS
    from repro.db.tuples import facts

    return set(
        facts("games", FALSE_FINALS)
        + facts("teams", FALSE_TEAMS)
        + facts("goals", FALSE_GOALS)
    )


class TestAuditTrail:
    def test_log_round_trip(self, fig1_dirty, fig1_gt, tmp_path):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        QOCO(fig1_dirty, oracle).clean(EX1)
        path = tmp_path / "audit.json"
        oracle.log.save_json(path)
        loaded = InteractionLog.load_json(path)
        assert loaded.question_count == oracle.log.question_count
        assert loaded.total_cost == oracle.log.total_cost
        assert loaded.category_costs() == oracle.log.category_costs()

    def test_to_from_dicts(self):
        log = InteractionLog()
        log.record(QuestionKind.VERIFY_FACT, 1, "x")
        log.record(QuestionKind.COMPLETE_ASSIGNMENT, 3)
        rebuilt = InteractionLog.from_dicts(log.to_dicts())
        assert rebuilt.records == log.records


class TestEdgeInputs:
    def test_query_over_empty_database(self, fig1_gt):
        from repro.db.database import Database

        empty = Database(fig1_gt.schema)
        assert evaluate(EX1, empty) == set()

    def test_cleaning_empty_database(self, fig1_gt):
        from repro.db.database import Database

        empty = Database(fig1_gt.schema)
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        report = QOCO(empty, oracle, QOCOConfig(seed=0)).clean(EX1)
        assert evaluate(EX1, empty) == evaluate(EX1, fig1_gt)
        assert report.converged

    def test_cleaning_against_empty_ground_truth(self, fig1_dirty):
        from repro.db.database import Database

        empty_gt = Database(fig1_dirty.schema)
        oracle = AccountingOracle(PerfectOracle(empty_gt))
        report = QOCO(fig1_dirty, oracle, QOCOConfig(seed=0)).clean(EX1)
        assert evaluate(EX1, fig1_dirty) == set()

    def test_single_fact_database(self, fig1_gt):
        from repro.db.database import Database

        tiny = Database(fig1_gt.schema, [fact("teams", "GER", "EU")])
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        QOCO(tiny, oracle, QOCOConfig(seed=0)).clean(EX1)
        assert evaluate(EX1, tiny) == evaluate(EX1, fig1_gt)
