"""Tests for CQ containment and minimization (Chandra-Merlin)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import Fact
from repro.query.evaluator import evaluate
from repro.query.minimize import (
    are_equivalent,
    canonical_database,
    is_contained_in,
    minimize,
)
from repro.query.parser import parse_query


class TestCanonicalDatabase:
    def test_one_fact_per_atom(self):
        q = parse_query("q(x) :- r(x, y), r(y, x).")
        db, head = canonical_database(q)
        assert db.size("r") == 2
        assert head == ("§var:x",)

    def test_constants_frozen_distinctly_from_variables(self):
        q = parse_query('q(x) :- r(x, "EU").')
        db, _ = canonical_database(q)
        fact = next(iter(db.facts("r")))
        assert fact.values[0] == "§var:x"
        assert fact.values[1].startswith("§const:")


class TestContainment:
    def test_identical_queries(self):
        a = parse_query("q(x) :- r(x, y).")
        b = parse_query("q(x) :- r(x, y).")
        assert is_contained_in(a, b)
        assert is_contained_in(b, a)

    def test_more_specific_contained_in_general(self):
        specific = parse_query("q(x) :- r(x, y), s(y).")
        general = parse_query("q(x) :- r(x, y).")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_constant_specialization(self):
        specific = parse_query('q(x) :- r(x, "EU").')
        general = parse_query("q(x) :- r(x, y).")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_different_head_arities_incomparable(self):
        a = parse_query("q(x) :- r(x, y).")
        b = parse_query("q(x, y) :- r(x, y).")
        assert not is_contained_in(a, b)

    def test_renamed_variables_equivalent(self):
        a = parse_query("q(x) :- r(x, y), s(y).")
        b = parse_query("q(u) :- r(u, w), s(w).")
        assert are_equivalent(a, b)

    def test_inequality_conservative(self):
        with_ineq = parse_query("q(x) :- r(x, y), x != y.")
        without = parse_query("q(x) :- r(x, y).")
        assert is_contained_in(with_ineq, without)
        assert not is_contained_in(without, with_ineq)

    def test_semantic_check_on_random_data(self, rng):
        """contained(a, b) implies a's answers ⊆ b's answers on data."""
        schema = Schema.from_dict({"r": ["a", "b"], "s": ["a"]})
        a = parse_query("q(x) :- r(x, y), s(y).")
        b = parse_query("q(x) :- r(x, y).")
        for seed in range(20):
            local = random.Random(seed)
            db = Database(
                schema,
                [
                    Fact("r", (local.randrange(4), local.randrange(4)))
                    for _ in range(6)
                ]
                + [Fact("s", (local.randrange(4),)) for _ in range(3)],
            )
            assert evaluate(a, db) <= evaluate(b, db)


class TestMinimize:
    def test_redundant_atom_removed(self):
        q = parse_query("q(x) :- r(x, y), r(x, z).")
        minimal = minimize(q)
        assert len(minimal.atoms) == 1
        assert are_equivalent(minimal, q)

    def test_non_redundant_self_join_kept(self):
        q = parse_query("q(x) :- r(x, y), r(y, x).")
        assert len(minimize(q).atoms) == 2

    def test_chain_with_duplicate_suffix(self):
        q = parse_query("q(x) :- r(x, y), s(y), r(x, w), s(w).")
        minimal = minimize(q)
        assert len(minimal.atoms) == 2
        assert are_equivalent(minimal, q)

    def test_inequality_blocks_collapse(self):
        # y and z cannot be merged: the inequality needs both.
        q = parse_query("q(x) :- r(x, y), r(x, z), y != z.")
        assert len(minimize(q).atoms) == 2

    def test_constants_block_collapse(self):
        q = parse_query('q(x) :- r(x, "EU"), r(x, y).')
        minimal = minimize(q)
        # r(x, y) is subsumed by r(x, "EU")
        assert len(minimal.atoms) == 1
        assert minimal.atoms[0].terms[1] == "EU"

    def test_workload_queries_already_minimal(self):
        from repro.workloads import Q1, Q3, Q5, EX2

        for q in (Q1, Q3, Q5, EX2):
            assert len(minimize(q).atoms) == len(q.atoms)

    def test_negation_returned_unchanged(self):
        q = parse_query("q(x) :- r(x, y), r(x, z), not s(x).")
        assert minimize(q) is q

    def test_minimized_query_same_results(self, worldcup_gt):
        bloated = parse_query(
            'q(x) :- games(d1, x, y, "Final", u1), games(d1, x, y2, "Final", u2), '
            'teams(x, "EU").'
        )
        minimal = minimize(bloated)
        assert len(minimal.atoms) < len(bloated.atoms)
        assert evaluate(minimal, worldcup_gt) == evaluate(bloated, worldcup_gt)


SCHEMA = Schema.from_dict({"r": ["a", "b"], "s": ["a"]})
CONSTS = [0, 1, 2]


@st.composite
def random_cq(draw):
    from repro.query.ast import Atom, Query, Var

    variables = [Var(n) for n in ("x", "y", "z")]
    n = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n):
        if draw(st.booleans()):
            atoms.append(
                Atom(
                    "r",
                    (
                        draw(st.sampled_from(variables)),
                        draw(st.sampled_from(variables + CONSTS)),  # type: ignore[operator]
                    ),
                )
            )
        else:
            atoms.append(Atom("s", (draw(st.sampled_from(variables)),)))
    body_vars = sorted(set().union(*(a.variables() for a in atoms)), key=str)
    if not body_vars:
        atoms.append(Atom("s", (variables[0],)))
        body_vars = [variables[0]]
    head = (draw(st.sampled_from(body_vars)),)
    return Query(head, tuple(atoms), (), "rand")


@given(query=random_cq())
@settings(max_examples=80, deadline=None)
def test_minimize_preserves_semantics(query):
    minimal = minimize(query)
    assert len(minimal.atoms) <= len(query.atoms)
    rng = random.Random(0)
    for seed in range(5):
        local = random.Random(seed)
        db = Database(
            SCHEMA,
            [
                Fact("r", (local.randrange(3), local.randrange(3)))
                for _ in range(5)
            ]
            + [Fact("s", (local.randrange(3),)) for _ in range(2)],
        )
        assert evaluate(minimal, db) == evaluate(query, db)
