"""Unit tests for the enumeration black-box (completion estimators)."""

import random

import pytest

from repro.oracle.enumeration import Chao92Estimator, ExactCompletion


class TestExactCompletion:
    def test_complete_on_none(self):
        est = ExactCompletion()
        assert not est.is_complete()
        est.observe(("ITA",))
        assert not est.is_complete()
        est.observe(None)
        assert est.is_complete()

    def test_reset(self):
        est = ExactCompletion()
        est.observe(None)
        est.reset()
        assert not est.is_complete()


class TestChao92:
    def test_patience_on_none_streak(self):
        est = Chao92Estimator(patience=2)
        est.observe("a")
        est.observe(None)
        assert not est.is_complete()
        est.observe(None)
        assert est.is_complete()

    def test_none_streak_interrupted(self):
        est = Chao92Estimator(patience=2, min_samples=100)
        est.observe(None)
        est.observe("a")
        est.observe(None)
        assert not est.is_complete()

    def test_saturated_sample_declared_complete(self):
        # Every answer seen many times -> estimate ~= distinct.
        est = Chao92Estimator(min_samples=3)
        for _ in range(4):
            for item in ("a", "b", "c"):
                est.observe(item)
        assert est.estimate() == pytest.approx(3.0, abs=0.6)
        assert est.is_complete()

    def test_all_singletons_not_complete(self):
        est = Chao92Estimator(min_samples=3)
        for item in ("a", "b", "c", "d", "e"):
            est.observe(item)
        assert est.estimate() > est.distinct
        assert not est.is_complete()

    def test_min_samples_respected(self):
        est = Chao92Estimator(min_samples=10)
        est.observe("a")
        est.observe("a")
        assert not est.is_complete()

    def test_estimate_grows_with_singletons(self):
        few = Chao92Estimator()
        many = Chao92Estimator()
        for item in ("a", "a", "b", "b"):
            few.observe(item)
        for item in ("a", "b", "c", "d"):
            many.observe(item)
        assert many.estimate() > few.estimate()

    def test_estimates_true_richness_on_uniform_sampling(self):
        # Sample 120 draws from 12 species; Chao92 should land near 12.
        rng = random.Random(9)
        est = Chao92Estimator(min_samples=30)
        species = [f"s{i}" for i in range(12)]
        for _ in range(120):
            est.observe(rng.choice(species))
        assert est.estimate() == pytest.approx(12, abs=2.5)
        assert est.is_complete()

    def test_reset(self):
        est = Chao92Estimator()
        for item in ("a", "a", "a"):
            est.observe(item)
        est.reset()
        assert est.distinct == 0
        assert est.sample_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Chao92Estimator(min_samples=0)
        with pytest.raises(ValueError):
            Chao92Estimator(patience=0)

    def test_empty_estimate_zero(self):
        assert Chao92Estimator().estimate() == 0.0
