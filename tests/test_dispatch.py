"""Unit and property tests for the live crowd-dispatch engine.

Covers the policy objects (retry/fault/budget), the worker pool's
availability model, structural question identity, and the engine's
behaviour under faults, budgets, and deduplication.  The differential
contracts (dispatch ≡ synchronous loop ≡ crowd-simulator replay) live
in ``test_dispatch_differential.py``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from qoco_strategies import databases, queries
from repro.db.tuples import fact
from repro.dispatch import (
    Budget,
    DedupIndex,
    DispatchEngine,
    FaultKind,
    FaultModel,
    RetryPolicy,
    WorkerPool,
    dispatch_clean,
    perfect_pool,
    question_key,
)
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.ast import Var
from repro.query.evaluator import evaluate
from repro.workloads import EX1


def constant_latency(seconds: float = 100.0):
    return lambda rng: seconds


class ScriptedRng:
    """A fake RNG whose ``random()`` pops scripted values (then 0.99)."""

    def __init__(self, values):
        self.values = list(values)

    def random(self) -> float:
        return self.values.pop(0) if self.values else 0.99


def make_engine(gt, n_workers: int = 4, inbox_capacity=None, **kwargs):
    """An engine over a perfect pool, bound to a fresh accounting oracle."""
    pool = perfect_pool(gt, n_workers, inbox_capacity=inbox_capacity)
    kwargs.setdefault("latency", constant_latency())
    kwargs.setdefault("rng", random.Random(5))
    engine = DispatchEngine(pool, **kwargs)
    oracle = AccountingOracle(PerfectOracle(gt))
    engine.bind(oracle)
    return engine, oracle


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(timeout=60.0, backoff_base=10.0, backoff_factor=3.0)
        assert policy.delay(0) == 10.0
        assert policy.delay(1) == 30.0
        assert policy.delay(2) == 90.0

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultModel(no_show_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(late_factor=0.5)

    def test_active_and_lossy(self):
        assert not FaultModel().active
        assert FaultModel(late_rate=0.1).active
        assert not FaultModel(late_rate=0.1).lossy
        assert FaultModel(no_show_rate=0.1).lossy
        assert FaultModel(dropout_rate=0.1).lossy

    def test_draw_priority_order(self):
        model = FaultModel(
            no_show_rate=1.0, dropout_rate=1.0, late_rate=1.0,
            rng=random.Random(0),
        )
        assert model.draw() is FaultKind.DROPOUT
        assert FaultModel(
            no_show_rate=1.0, late_rate=1.0, rng=random.Random(0)
        ).draw() is FaultKind.NO_SHOW
        assert FaultModel(late_rate=1.0, rng=random.Random(0)).draw() is FaultKind.LATE

    def test_inactive_model_never_draws(self):
        assert FaultModel().draw() is None


class TestBudget:
    def test_cost_exhaustion(self):
        budget = Budget(max_cost=5)
        assert not budget.cost_exhausted()
        budget.charge(5)
        assert budget.cost_exhausted()
        assert budget.exhausted(0.0)

    def test_deadline_exhaustion(self):
        budget = Budget(deadline=100.0)
        assert not budget.time_exhausted(99.9)
        assert budget.time_exhausted(100.0)
        assert not budget.cost_exhausted()

    def test_unbounded_never_exhausts(self):
        budget = Budget()
        budget.charge(10**9)
        assert not budget.exhausted(10**9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_cost=-1)
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)


# ---------------------------------------------------------------------------
# the worker pool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def _pool(self, gt, n=3, **kwargs):
        return perfect_pool(gt, n, **kwargs)

    def test_needs_members(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_inbox_capacity_validated(self, fig1_gt):
        with pytest.raises(ValueError):
            self._pool(fig1_gt, inbox_capacity=0)

    def test_acquire_earliest_free(self, fig1_gt):
        pool = self._pool(fig1_gt)
        first = pool.acquire(0.0)
        pool.commit(first, 100.0)
        second = pool.acquire(0.0)
        pool.commit(second, 50.0)
        third = pool.acquire(0.0)
        pool.commit(third, 200.0)
        assert {first.worker_id, second.worker_id, third.worker_id} == {0, 1, 2}
        # all busy now: the earliest-free (50.0) worker comes back first
        assert pool.acquire(0.0).worker_id == second.worker_id

    def test_exclusion_skips_workers(self, fig1_gt):
        pool = self._pool(fig1_gt)
        worker = pool.acquire(0.0, exclude=frozenset({0, 1}))
        assert worker.worker_id == 2

    def test_all_excluded_spills_to_earliest(self, fig1_gt):
        pool = self._pool(fig1_gt)
        worker = pool.acquire(0.0, exclude=frozenset({0, 1, 2}))
        assert worker is not None  # the question must go somewhere

    def test_saturated_inbox_rejected_and_counted(self, fig1_gt):
        pool = self._pool(fig1_gt, n=2, inbox_capacity=1)
        w0 = pool.acquire(0.0)
        w0.occupy(0.0, 100.0)
        pool.commit(w0, 100.0)
        w1 = pool.acquire(0.0)
        assert w1.worker_id != w0.worker_id
        w1.occupy(0.0, 100.0)
        pool.commit(w1, 100.0)
        # both saturated at t=0: skipped (counted), then spill
        spilled = pool.acquire(0.0)
        assert spilled is not None
        assert pool.inbox_rejections == 2
        # once the windows close the same workers are eligible again
        assert pool.acquire(150.0).inbox_depth(150.0) == 0

    def test_dropout_leaves_for_good(self, fig1_gt):
        pool = self._pool(fig1_gt, n=2)
        w0 = pool.acquire(0.0)
        pool.drop(w0)
        assert pool.alive_count == 1
        survivor = pool.acquire(0.0)
        pool.commit(survivor, 10.0)
        assert survivor.worker_id != w0.worker_id
        assert pool.acquire(0.0).worker_id == survivor.worker_id

    def test_empty_pool_returns_none(self, fig1_gt):
        pool = self._pool(fig1_gt, n=1)
        pool.drop(pool.workers[0])
        assert pool.acquire(0.0) is None


# ---------------------------------------------------------------------------
# structural question identity
# ---------------------------------------------------------------------------


class TestQuestionKey:
    def test_closed_kinds_are_keyed(self):
        f = fact("teams", "ESP", "EU")
        assert question_key(("verify_fact", f)) == ("verify_fact", f)
        key = question_key(("verify_answer", EX1, ("GER",)))
        assert key == ("verify_answer", EX1, ("GER",))

    def test_candidate_key_ignores_mapping_order(self):
        x, y = Var("x"), Var("y")
        a = question_key(("verify_candidate", EX1, {x: "GER", y: "ARG"}))
        b = question_key(("verify_candidate", EX1, {y: "ARG", x: "GER"}))
        assert a == b

    def test_open_kinds_never_keyed(self):
        assert question_key(("complete", EX1, {})) is None
        assert question_key(("complete_result", EX1, frozenset())) is None

    def test_keys_are_value_based(self, fig1_gt):
        # two distinct-but-equal facts coalesce; distinct facts never do
        assert question_key(
            ("verify_fact", fact("teams", "ESP", "EU"))
        ) == question_key(("verify_fact", fact("teams", "ESP", "EU")))
        assert question_key(
            ("verify_fact", fact("teams", "ESP", "EU"))
        ) != question_key(("verify_fact", fact("teams", "ITA", "EU")))


class TestDedupIndex:
    def test_subscribe_counts_coalesced(self):
        index = DedupIndex()
        index.publish("k", True)
        assert index.lookup("k") is True
        assert index.subscribe("k") is True
        assert index.subscribe("k") is True
        assert index.coalesced == 2
        index.clear()
        assert index.lookup("k") is None


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class TestEngineValidation:
    def test_needs_votes(self, fig1_gt):
        with pytest.raises(ValueError):
            DispatchEngine(perfect_pool(fig1_gt, 2), votes_per_closed=0)

    def test_lossy_faults_require_timeout(self, fig1_gt):
        with pytest.raises(ValueError, match="timeout"):
            DispatchEngine(
                perfect_pool(fig1_gt, 2),
                faults=FaultModel(no_show_rate=0.1),
            )
        # non-lossy faults are fine without one
        DispatchEngine(
            perfect_pool(fig1_gt, 2), faults=FaultModel(late_rate=0.1)
        )

    def test_unbound_engine_refuses_rounds(self, fig1_gt):
        engine = DispatchEngine(perfect_pool(fig1_gt, 2))
        with pytest.raises(RuntimeError, match="not bound"):
            engine.resolve_round([("verify_fact", fact("teams", "ESP", "EU"))])

    def test_one_engine_per_session(self, fig1_gt):
        engine, _ = make_engine(fig1_gt)
        with pytest.raises(RuntimeError, match="already bound"):
            engine.bind(AccountingOracle(PerfectOracle(fig1_gt)))


class TestEngineRounds:
    def test_cached_fact_answered_free(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt)
        f = fact("teams", "ESP", "EU")
        oracle.remember_fact(f, False)
        assert engine.resolve_round([("verify_fact", f)]) == [False]
        assert engine.stats.cache_hits == 1
        assert oracle.log.question_count == 0
        assert engine.wall_clock == 0.0

    def test_duplicate_closed_questions_coalesce(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt, votes_per_closed=3)
        f = fact("teams", "ESP", "EU")
        answers = engine.resolve_round([("verify_fact", f), ("verify_fact", f)])
        assert answers == [True, True]
        assert oracle.log.question_count == 1
        assert engine.stats.member_answers == 3  # one shared vote sample
        assert engine.stats.dedup_coalesced == 1

    def test_naive_mode_pays_for_every_duplicate(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt, votes_per_closed=3, dedup=False)
        f = fact("teams", "ESP", "EU")
        engine.resolve_round([("verify_fact", f), ("verify_fact", f)])
        assert oracle.log.question_count == 2
        assert engine.stats.member_answers == 6
        assert engine.stats.dedup_coalesced == 0

    def test_cache_commits_land_at_round_end(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt)
        f = fact("teams", "ESP", "EU")
        assert not oracle.knows_fact(f)
        engine.resolve_round([("verify_fact", f)])
        assert oracle.known_fact_value(f) is True
        # the next round answers it from the cache, free
        engine.resolve_round([("verify_fact", f)])
        assert engine.stats.cache_hits == 1
        assert oracle.log.question_count == 1

    def test_open_questions_never_coalesce(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt)
        request = ("complete_result", EX1, frozenset())
        engine.resolve_round([request, request])
        assert oracle.log.count_of([QuestionKind.COMPLETE_RESULT]) == 2
        assert engine.stats.dedup_coalesced == 0

    def test_same_kind_questions_run_in_parallel(self, fig1_gt):
        engine, _ = make_engine(fig1_gt, votes_per_closed=1)
        engine.resolve_round(
            [
                ("verify_fact", fact("teams", "ESP", "EU")),
                ("verify_fact", fact("teams", "ITA", "EU")),
            ]
        )
        ends = [c.completed_at for c in engine.timeline.completions]
        assert ends == [100.0, 100.0]  # two workers, one wave

    def test_kind_change_is_a_wave_barrier(self, fig1_gt):
        engine, _ = make_engine(fig1_gt, votes_per_closed=1)
        engine.resolve_round(
            [
                ("verify_fact", fact("teams", "ESP", "EU")),
                ("verify_answer", EX1, ("GER",)),
            ]
        )
        ends = [c.completed_at for c in engine.timeline.completions]
        assert ends == [100.0, 200.0]  # the answer wave waits for the facts
        assert engine.wall_clock == 200.0


class TestEngineFaults:
    def test_no_show_exhausts_retries_then_degrades(self, fig1_gt):
        engine, oracle = make_engine(
            fig1_gt,
            votes_per_closed=1,
            faults=FaultModel(no_show_rate=1.0, rng=random.Random(0)),
            retry=RetryPolicy(timeout=50.0, max_retries=2),
        )
        answers = engine.resolve_round(
            [("verify_fact", fact("teams", "XXX", "EU"))]
        )
        assert answers == [True]  # conservative fallback: never delete
        assert engine.degraded
        assert engine.stats.no_shows == 3  # original + 2 retries
        assert engine.stats.timeouts == 3
        assert engine.stats.retries == 2
        assert engine.stats.unanswered == 1
        assert oracle.log.question_count == 0  # nothing was ever answered

    def test_retries_reroute_to_fresh_workers(self, fig1_gt):
        engine, _ = make_engine(
            fig1_gt,
            n_workers=4,
            votes_per_closed=1,
            faults=FaultModel(no_show_rate=1.0, rng=random.Random(0)),
            retry=RetryPolicy(timeout=50.0, max_retries=2, reroute=True),
        )
        engine.resolve_round([("verify_fact", fact("teams", "ESP", "EU"))])
        hit = [w.worker_id for w in engine.pool.workers if w.no_shows]
        assert len(hit) == 3  # three distinct workers tried

    def test_dropouts_can_drain_the_pool(self, fig1_gt):
        engine, _ = make_engine(
            fig1_gt,
            n_workers=2,
            votes_per_closed=1,
            faults=FaultModel(dropout_rate=1.0, rng=random.Random(0)),
            retry=RetryPolicy(timeout=50.0, max_retries=5),
        )
        answers = engine.resolve_round(
            [("verify_fact", fact("teams", "ESP", "EU"))]
        )
        assert answers == [True]
        assert engine.stats.dropouts == 2
        assert engine.pool.alive_count == 0
        assert engine.stats.no_workers >= 1
        assert engine.degraded  # never hangs, degrades instead

    def test_late_answer_past_timeout_is_discarded(self, fig1_gt):
        engine, _ = make_engine(
            fig1_gt,
            votes_per_closed=1,
            latency=constant_latency(10.0),
            faults=FaultModel(
                late_rate=1.0, late_factor=4.0, rng=random.Random(0)
            ),
            retry=RetryPolicy(timeout=20.0, max_retries=1),
        )
        engine.resolve_round([("verify_fact", fact("teams", "ESP", "EU"))])
        # every attempt answers at 40s > 20s timeout: collected, discarded
        assert engine.stats.late_answers == 2
        assert engine.stats.member_answers == 2
        assert engine.stats.discarded_answers == 2
        assert engine.stats.unanswered == 1

    def test_late_answer_within_timeout_counts(self, fig1_gt):
        engine, oracle = make_engine(
            fig1_gt,
            votes_per_closed=1,
            latency=constant_latency(10.0),
            faults=FaultModel(
                late_rate=1.0, late_factor=1.5, rng=random.Random(0)
            ),
            retry=RetryPolicy(timeout=20.0),
        )
        assert engine.resolve_round(
            [("verify_fact", fact("teams", "ESP", "EU"))]
        ) == [True]
        assert engine.stats.late_answers == 1
        assert engine.stats.discarded_answers == 0
        assert oracle.log.question_count == 1

    def test_partial_vote_sample_still_decides(self, fig1_gt):
        # vote 2 draws the only no-show and has no retries left: the
        # question is decided on 2 of 3 votes and flagged partial
        engine, oracle = make_engine(
            fig1_gt,
            votes_per_closed=3,
            faults=FaultModel(
                no_show_rate=0.5, rng=ScriptedRng([0.9, 0.1, 0.9])
            ),
            retry=RetryPolicy(timeout=150.0, max_retries=0),
        )
        assert engine.resolve_round(
            [("verify_fact", fact("teams", "ESP", "EU"))]
        ) == [True]
        assert engine.stats.partial_votes == 1
        assert oracle.log.question_count == 1

    def test_bounded_inbox_spreads_votes(self, fig1_gt):
        engine, _ = make_engine(
            fig1_gt, n_workers=2, inbox_capacity=1, votes_per_closed=4
        )
        engine.resolve_round([("verify_fact", fact("teams", "ESP", "EU"))])
        assert engine.pool.inbox_rejections >= 1


class TestEngineBudgets:
    def test_cost_exhaustion_denies_with_conservative_fallbacks(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt, budget=Budget(max_cost=0))
        answers = engine.resolve_round(
            [
                ("verify_fact", fact("teams", "ESP", "EU")),
                ("verify_answer", EX1, ("GER",)),
                ("verify_candidate", EX1, {Var("x"): "GER"}),
                ("complete", EX1, {}),
                ("complete_result", EX1, frozenset()),
            ]
        )
        assert answers == [True, True, False, None, None]
        assert engine.degraded
        assert engine.stats.budget_denied == 5
        assert oracle.log.question_count == 0  # denied questions leave no trace

    def test_cost_budget_lets_inflight_work_finish(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt, budget=Budget(max_cost=1))
        engine.resolve_round(
            [
                ("verify_fact", fact("teams", "ESP", "EU")),
                ("verify_fact", fact("teams", "ITA", "EU")),
            ]
        )
        # the first question fit the budget; the second found it spent
        assert oracle.log.question_count == 1
        assert engine.stats.budget_denied == 1
        assert engine.budget.spent == 1

    def test_deadline_checked_against_round_start(self, fig1_gt):
        engine, oracle = make_engine(fig1_gt, budget=Budget(deadline=50.0))
        f1, f2 = fact("teams", "ESP", "EU"), fact("teams", "ITA", "EU")
        # round 1 starts at t=0 < deadline: both questions run (to 100s)
        engine.resolve_round([("verify_fact", f1)])
        assert oracle.log.question_count == 1
        # round 2 starts past the deadline: denied without posting
        engine.resolve_round([("verify_fact", f2)])
        assert oracle.log.question_count == 1
        assert engine.stats.budget_denied == 1
        assert engine.degraded


class TestDispatchClean:
    def test_fault_free_session_matches_synchronous(self, fig1_gt, fig1_dirty):
        from repro.core.parallel import ParallelQOCO

        sync_db = fig1_dirty.copy()
        sync = ParallelQOCO(
            sync_db, AccountingOracle(PerfectOracle(fig1_gt)), seed=5
        ).clean(EX1)
        report, engine = dispatch_clean(
            fig1_dirty, EX1, [PerfectOracle(fig1_gt)] * 4, seed=5
        )
        assert not fig1_dirty.symmetric_difference(sync_db)
        assert report.log.to_dicts() == sync.log.to_dicts()
        assert report.rounds == sync.rounds
        assert report.converged
        assert report.wall_clock == engine.wall_clock > 0.0
        assert "simulated wall-clock" in report.summary()

    def test_budget_exhaustion_reports_non_convergence(self, fig1_gt, fig1_dirty):
        report, engine = dispatch_clean(
            fig1_dirty,
            EX1,
            [PerfectOracle(fig1_gt)] * 4,
            budget=Budget(max_cost=2),
            seed=5,
        )
        assert not report.converged
        assert engine.degraded
        assert report.total_cost <= 2
        assert engine.stats.budget_denied > 0
        assert "[did not converge]" in report.summary()


# ---------------------------------------------------------------------------
# property: faults + retries never change the cleaning outcome
# ---------------------------------------------------------------------------


@given(
    gt=databases(max_size=15),
    dirty=databases(max_size=15),
    query=queries(),
    fault_seed=st.integers(0, 2**16),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_faulted_cleaning_matches_fault_free(gt, dirty, query, fault_seed):
    """Injected no-shows/late answers with retries enabled leave the
    final database identical to the fault-free dispatch run: faults cost
    retries and wall-clock, never correctness (unless the engine had to
    degrade, which it must then report)."""
    members = [PerfectOracle(gt)] * 4

    baseline_db = dirty.copy()
    baseline, _ = dispatch_clean(
        baseline_db, query, members,
        latency=constant_latency(60.0), seed=0,
    )

    faulted_db = dirty.copy()
    faulted, engine = dispatch_clean(
        faulted_db, query, members,
        latency=constant_latency(60.0), seed=0,
        faults=FaultModel(
            no_show_rate=0.25, late_rate=0.25, late_factor=4.0,
            rng=random.Random(fault_seed),
        ),
        retry=RetryPolicy(timeout=100.0, max_retries=8),
    )

    if engine.stats.fallbacks == 0:
        assert not faulted_db.symmetric_difference(baseline_db)
        assert faulted.converged == baseline.converged
        if baseline.converged:
            assert evaluate(query, faulted_db) == evaluate(query, gt)
    else:
        # a vote slot lost every retry: the run must say so, not hang
        assert not faulted.converged


# ---------------------------------------------------------------------------
# the answer board's cursor contract
# ---------------------------------------------------------------------------


class TestAnswerBoardCursor:
    """Pins the concurrent-append contract documented on
    :meth:`repro.dispatch.dedup.AnswerBoard.entries`: an integer cursor
    advanced by slice length observes every published entry exactly
    once, in publication order, while writers keep appending."""

    def test_cursor_sees_every_entry_exactly_once_under_concurrent_appends(self):
        import threading

        from repro.dispatch import AnswerBoard

        board = AnswerBoard()
        writers, per_writer = 4, 200
        start = threading.Barrier(writers + 1)

        def write(w: int) -> None:
            start.wait()
            for i in range(per_writer):
                board.put(("verify_fact", w, i), ("value", w, i))

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(writers)
        ]
        for thread in threads:
            thread.start()

        seen: list = []
        cursor = 0
        start.wait()  # race the reader against all writers from the gun
        while len(seen) < writers * per_writer:
            batch = board.entries(cursor)
            cursor += len(batch)
            seen.extend(batch)
        for thread in threads:
            thread.join()

        # exactly once: no skips, no double reads
        assert len(seen) == writers * per_writer
        assert len(set(key for key, _ in seen)) == writers * per_writer
        # in publication order: the final full listing is the exact
        # concatenation of the slices the cursor walked
        assert seen == board.entries(0)
        # and per-writer publication order is preserved
        for w in range(writers):
            mine = [key[2] for key, _ in seen if key[1] == w]
            assert mine == sorted(mine)

    def test_first_writer_wins_and_positions_never_move(self):
        from repro.dispatch import AnswerBoard

        board = AnswerBoard()
        board.put("k1", "first")
        snapshot = board.entries(0)
        board.put("k1", "second")  # loses: first writer won
        board.put("k2", "other")
        assert board.entries(0)[: len(snapshot)] == snapshot
        assert dict(board.entries(0))["k1"] == "first"
        # a cursor parked past the end sees only the new entry
        assert board.entries(len(snapshot)) == [("k2", "other")]
