"""Tests for materialized views and incremental maintenance."""

import random

import pytest

from repro.db.database import Database
from repro.db.edits import delete, insert
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.views.materialized import MaterializedView, ViewManager
from repro.workloads import EX1


@pytest.fixture
def schema():
    return Schema.from_dict({"r": ["a", "b"], "s": ["b"]})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        [fact("r", 1, 2), fact("r", 3, 2), fact("s", 2)],
    )


QUERY = parse_query("q(a) :- r(a, b), s(b).")


class TestMaterializedView:
    def test_initial_materialization(self, db):
        view = MaterializedView(QUERY, db)
        assert view.answers() == {(1,), (3,)}
        assert view.support((1,)) == 1

    def test_insert_adds_answer(self, db):
        view = MaterializedView(QUERY, db)
        db.insert(fact("r", 9, 2))
        added = view.on_insert(fact("r", 9, 2))
        assert added == {(9,)}
        assert view.answers() == {(1,), (3,), (9,)}

    def test_insert_increases_support_without_new_answer(self, db):
        view = MaterializedView(QUERY, db)
        db.insert(fact("s", 5))
        assert view.on_insert(fact("s", 5)) == set()
        db.insert(fact("r", 1, 5))
        added = view.on_insert(fact("r", 1, 5))
        assert added == set()  # (1,) already present
        assert view.support((1,)) == 2

    def test_delete_decrements_support(self, db):
        view = MaterializedView(QUERY, db)
        db.insert(fact("s", 5))
        view.on_insert(fact("s", 5))
        db.insert(fact("r", 1, 5))
        view.on_insert(fact("r", 1, 5))
        removed = view.on_delete(fact("r", 1, 5))
        db.delete(fact("r", 1, 5))
        assert removed == set()
        assert view.support((1,)) == 1

    def test_delete_removes_answer(self, db):
        view = MaterializedView(QUERY, db)
        removed = view.on_delete(fact("r", 1, 2))
        db.delete(fact("r", 1, 2))
        assert removed == {(1,)}
        assert view.answers() == {(3,)}

    def test_shared_fact_deletion_removes_all(self, db):
        view = MaterializedView(QUERY, db)
        removed = view.on_delete(fact("s", 2))
        db.delete(fact("s", 2))
        assert removed == {(1,), (3,)}
        assert view.answers() == set()

    def test_self_join_dedup(self, schema):
        db = Database(schema, [fact("s", 2)])
        q = parse_query("q(a) :- r(a, b), r(a, c), s(b).")
        view = MaterializedView(q, db)
        db.insert(fact("r", 1, 2))
        added = view.on_insert(fact("r", 1, 2))
        assert added == {(1,)}
        # one assignment (b=c=2), counted once despite two atom positions
        assert view.support((1,)) == 1

    def test_contains_and_len(self, db):
        view = MaterializedView(QUERY, db)
        assert (1,) in view
        assert (99,) not in view
        assert len(view) == 2


class TestViewManager:
    def test_register_and_query(self, db):
        manager = ViewManager(db)
        view = manager.register(QUERY)
        assert manager.view("q") is view
        assert manager.names == ("q",)

    def test_duplicate_name_rejected(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        with pytest.raises(ValueError):
            manager.register(QUERY)

    def test_insert_routes_to_views(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        changed = manager.insert(fact("r", 9, 2))
        assert changed == {"q": {(9,)}}
        assert fact("r", 9, 2) in db

    def test_idempotent_insert_noop(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        # no-op edits emit the same per-view shape as real ones
        assert manager.insert(fact("r", 1, 2)) == {"q": set()}

    def test_delete_routes_to_views(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        changed = manager.delete(fact("s", 2))
        assert changed == {"q": {(1,), (3,)}}
        assert fact("s", 2) not in db

    def test_idempotent_delete_noop(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        assert manager.delete(fact("s", 99)) == {"q": set()}

    def test_apply_edit_sequence(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        changed = manager.apply(
            [insert(fact("r", 9, 2)), delete(fact("r", 1, 2))]
        )
        assert changed["q"] == {(9,), (1,)}

    def test_multiple_views(self, db):
        manager = ViewManager(db)
        manager.register(QUERY)
        manager.register(parse_query("p(b) :- s(b)."), name="p")
        changed = manager.insert(fact("s", 7))
        assert changed["p"] == {(7,)}
        assert changed["q"] == set()


class TestNoOpEditDrift:
    """Regression: no-op edits must never drift the support counters."""

    def test_double_on_insert_does_not_double_count(self, db):
        view = MaterializedView(QUERY, db)
        db.insert(fact("r", 9, 2))
        assert view.on_insert(fact("r", 9, 2)) == {(9,)}
        # a second (no-op) notification for the same insert
        assert view.on_insert(fact("r", 9, 2)) == set()
        assert view.support((9,)) == 1
        assert view.answers() == evaluate(QUERY, db)

    def test_on_insert_of_already_present_fact_is_noop(self, db):
        view = MaterializedView(QUERY, db)
        # fact("r", 1, 2) was part of the initial materialization; a
        # redundant insert notification must not bump its support
        assert view.on_insert(fact("r", 1, 2)) == set()
        assert view.support((1,)) == 1

    def test_on_insert_before_database_insert_is_noop(self, db):
        view = MaterializedView(QUERY, db)
        # the insert "never landed": consistent empty delta, no drift
        assert view.on_insert(fact("r", 9, 2)) == set()
        assert view.support((9,)) == 0
        # once the fact actually lands the delta is emitted normally
        db.insert(fact("r", 9, 2))
        assert view.on_insert(fact("r", 9, 2)) == {(9,)}

    def test_double_on_delete_does_not_go_negative(self, db):
        view = MaterializedView(QUERY, db)
        assert view.on_delete(fact("r", 1, 2)) == {(1,)}
        db.delete(fact("r", 1, 2))
        # repeated delete notification: no-op, supports never negative
        assert view.on_delete(fact("r", 1, 2)) == set()
        assert view.support((1,)) == 0
        # re-inserting must resurrect the answer with support exactly 1
        db.insert(fact("r", 1, 2))
        assert view.on_insert(fact("r", 1, 2)) == {(1,)}
        assert view.support((1,)) == 1

    def test_on_delete_of_absent_fact_is_noop(self, db):
        view = MaterializedView(QUERY, db)
        assert view.on_delete(fact("r", 77, 77)) == set()
        assert view.answers() == evaluate(QUERY, db)

    def test_untracked_relation_is_noop(self, schema):
        db = Database(schema, [fact("r", 1, 2), fact("s", 2)])
        q = parse_query("q(a) :- r(a, b).")
        view = MaterializedView(q, db)
        db.insert(fact("s", 5))
        assert view.on_insert(fact("s", 5)) == set()
        assert view.answers() == {(1,)}

    def test_manager_noop_storm_keeps_views_exact(self, db):
        manager = ViewManager(db)
        view = manager.register(QUERY)
        for _ in range(3):
            manager.insert(fact("r", 1, 2))   # already present
            manager.delete(fact("s", 99))     # absent
        assert view.support((1,)) == 1
        assert view.answers() == evaluate(QUERY, db)


class TestIncrementalMatchesRecompute:
    def test_random_edit_sequences(self, schema):
        rng = random.Random(13)
        db = Database(schema)
        manager = ViewManager(db)
        view = manager.register(QUERY)
        pool = [fact("r", a, b) for a in range(4) for b in range(3)] + [
            fact("s", b) for b in range(3)
        ]
        for _ in range(300):
            victim = rng.choice(pool)
            if rng.random() < 0.5:
                manager.insert(victim)
            else:
                manager.delete(victim)
            assert view.answers() == evaluate(QUERY, db)

    def test_worldcup_cleaning_keeps_view_exact(self, worldcup_gt):
        from repro.datasets.noise import inject_result_errors

        errors = inject_result_errors(
            worldcup_gt, EX1, n_wrong=1, n_missing=1, rng=random.Random(3)
        )
        db = errors.dirty.copy()
        manager = ViewManager(db)
        view = manager.register(EX1)

        # replay a cleaning run's edits through the manager
        from repro.core.qoco import QOCO, QOCOConfig
        from repro.oracle.base import AccountingOracle
        from repro.oracle.perfect import PerfectOracle

        scratch = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = QOCO(scratch, oracle, QOCOConfig(seed=3)).clean(EX1)

        manager.apply(report.edits)
        assert view.answers() == evaluate(EX1, db)
        assert view.answers() == evaluate(EX1, worldcup_gt)
