"""Unit tests for the telemetry subsystem itself (spans, counters,
histograms, sinks, and the pipeline instrumentation points)."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.parallel import ParallelQOCO
from repro.core.qoco import QOCO, QOCOConfig
from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
from repro.experiments.reporting import render_telemetry_summary
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import Evaluator, evaluate
from repro.telemetry import (
    TELEMETRY,
    HistogramStat,
    InMemorySink,
    JSONLSink,
    Telemetry,
    get_telemetry,
    summary_table,
    telemetry_session,
)
from repro.workloads import EX1


class TestTelemetryCore:
    def test_disabled_by_default_records_nothing(self):
        hub = Telemetry()
        hub.count("x")
        hub.observe("h", 3)
        with hub.span("s"):
            pass
        assert hub.counters() == {}
        assert hub.histograms() == {}
        assert hub.span_stats() == {}

    def test_counters_aggregate_and_stream(self):
        hub = Telemetry()
        sink = InMemorySink()
        hub.enable(sink)
        hub.count("a")
        hub.count("a", 4)
        hub.count("b", 2)
        assert hub.counter("a") == 5
        assert hub.counter("b") == 2
        assert hub.counter("missing") == 0
        assert sink.counter_events == [("a", 1, 1), ("a", 4, 5), ("b", 2, 2)]
        assert sink.counter_stream("a") == [1, 4]

    def test_counter_prefix_filter(self):
        hub = Telemetry(enabled=True)
        hub.count("oracle.questions.verify_fact")
        hub.count("evaluator.index_probes")
        assert set(hub.counters("oracle.")) == {"oracle.questions.verify_fact"}

    def test_histograms(self):
        hub = Telemetry(enabled=True)
        for value in (1, 5, 3):
            hub.observe("sizes", value)
        stat = hub.histogram("sizes")
        assert stat.count == 3
        assert stat.total == 9
        assert stat.minimum == 1
        assert stat.maximum == 5
        assert stat.mean == 3
        # an unobserved histogram reads as empty, not KeyError
        assert hub.histogram("nope").count == 0
        assert HistogramStat().mean == 0.0

    def test_spans_nest_and_time(self):
        hub = Telemetry(enabled=True)
        sink = InMemorySink()
        hub.add_sink(sink)
        with hub.span("outer", label="x") as outer:
            assert hub.current_span() is outer
            with hub.span("inner"):
                pass
        assert hub.current_span() is None
        assert sink.span_paths() == ["outer/inner", "outer"]
        inner, outer_span = sink.spans
        assert inner.depth == 1 and outer_span.depth == 0
        assert outer_span.attributes == {"label": "x"}
        assert outer_span.duration >= inner.duration >= 0
        stats = hub.span_stats()
        assert stats["outer"].calls == 1 and stats["inner"].calls == 1

    def test_span_records_error_attribute(self):
        hub = Telemetry(enabled=True)
        sink = InMemorySink()
        hub.add_sink(sink)
        with pytest.raises(ValueError):
            with hub.span("boom"):
                raise ValueError("nope")
        assert sink.spans[0].attributes["error"] == "ValueError"
        assert hub.current_span() is None  # stack unwound

    def test_set_attribute_inside_span(self):
        hub = Telemetry(enabled=True)
        sink = InMemorySink()
        hub.add_sink(sink)
        with hub.span("s") as span:
            span.set_attribute("k", 7)
        assert sink.spans[0].attributes == {"k": 7}
        # and the no-op span accepts the same surface
        hub.disable()
        with hub.span("s") as noop:
            noop.set_attribute("k", 7)

    def test_reset_and_snapshot(self):
        hub = Telemetry(enabled=True)
        hub.count("c", 2)
        hub.observe("h", 1)
        with hub.span("s"):
            pass
        snap = hub.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["spans"]["s"]["calls"] == 1
        hub.reset()
        assert hub.snapshot() == {"counters": {}, "histograms": {}, "spans": {}}

    def test_merge_folds_child_snapshot(self):
        child = Telemetry(enabled=True)
        child.count("c", 3)
        child.observe("h", 1.0)
        child.observe("h", 5.0)
        with child.span("s"):
            pass
        parent = Telemetry(enabled=True)
        parent.count("c", 2)
        parent.observe("h", 3.0)
        with parent.span("s"):
            pass
        parent.merge(child.snapshot())
        assert parent.counter("c") == 5
        merged = parent.histograms()["h"]
        assert merged.count == 3
        assert merged.total == 9.0
        assert merged.minimum == 1.0
        assert merged.maximum == 5.0
        assert parent.span_stats()["s"].calls == 2

    def test_merge_creates_missing_aggregates(self):
        child = Telemetry(enabled=True)
        child.count("only.child", 4)
        child.observe("h", 2.0)
        with child.span("s"):
            pass
        parent = Telemetry(enabled=True)
        parent.merge(child.snapshot())
        assert parent.counter("only.child") == 4
        assert parent.histograms()["h"].count == 1
        assert parent.histograms()["h"].minimum == 2.0
        assert parent.span_stats()["s"].calls == 1
        # merging twice accumulates
        parent.merge(child.snapshot())
        assert parent.counter("only.child") == 8
        assert parent.span_stats()["s"].calls == 2

    def test_merge_noop_when_disabled_or_empty(self):
        parent = Telemetry()
        parent.merge({"counters": {"c": 1}, "histograms": {}, "spans": {}})
        assert parent.counters() == {}
        parent = Telemetry(enabled=True)
        parent.merge({"counters": {}, "histograms": {"h": {"count": 0, "total": 0, "min": None, "max": None, "mean": None}}, "spans": {}})
        assert parent.histograms() == {}

    def test_global_hub_and_session_restores_state(self):
        assert get_telemetry() is TELEMETRY
        assert not TELEMETRY.enabled
        TELEMETRY.enabled = True
        TELEMETRY._counters["pre"] = 7
        try:
            with telemetry_session() as (hub, sink):
                assert hub is TELEMETRY
                assert isinstance(sink, InMemorySink)
                assert hub.counter("pre") == 0  # fresh aggregates inside
                hub.count("inside")
            assert TELEMETRY.enabled  # prior state restored
            assert TELEMETRY.counter("pre") == 7
            assert TELEMETRY.counter("inside") == 0
        finally:
            TELEMETRY.enabled = False
            TELEMETRY.reset()


class TestSinks:
    def test_jsonl_sink_records(self):
        buffer = io.StringIO()
        hub = Telemetry()
        sink = JSONLSink(buffer)
        hub.enable(sink)
        with hub.span("phase", query="q"):
            hub.count("questions", 3)
        hub.flush()
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines[0]["type"] == "span"
        assert lines[0]["name"] == "phase"
        assert lines[0]["attributes"] == {"query": "q"}
        assert lines[0]["duration_s"] >= 0
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert summary["counters"] == {"questions": 3}

    def test_jsonl_sink_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        hub = Telemetry()
        sink = JSONLSink(str(path))
        hub.enable(sink)
        with hub.span("s"):
            pass
        hub.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == ["span", "summary"]

    def test_summary_table_renders_all_sections(self):
        hub = Telemetry(enabled=True)
        hub.count("oracle.cost.total", 12)
        hub.observe("view.delta_size", 2.5)
        with hub.span("qoco.clean"):
            pass
        text = summary_table(hub)
        for needle in (
            "counters", "histograms", "spans",
            "oracle.cost.total", "view.delta_size", "qoco.clean", "12",
        ):
            assert needle in text

    def test_summary_table_empty(self):
        assert "(no telemetry recorded)" in summary_table(Telemetry())

    def test_render_telemetry_summary_uses_global_hub(self):
        with telemetry_session():
            TELEMETRY.count("c", 1)
            text = render_telemetry_summary(title="t")
        assert "c" in text and text.startswith("t\n")


class TestPipelineInstrumentation:
    def test_evaluator_counters(self, worldcup_gt):
        with telemetry_session() as (hub, _):
            answers = evaluate(EX1, worldcup_gt)
            assert answers
            assert hub.counter("evaluator.evaluations") == 1
            assert hub.counter("evaluator.index_probes") > 0
            assert hub.counter("evaluator.backtrack_steps") >= hub.counter(
                "evaluator.assignments"
            )
            assert hub.counter("evaluator.assignments") >= len(answers)

    def test_witness_counters(self, worldcup_gt):
        with telemetry_session() as (hub, _):
            evaluator = Evaluator(EX1, worldcup_gt)
            answer = sorted(evaluator.answers())[0]
            witnesses = evaluator.witnesses(answer)
            assert hub.counter("evaluator.witness_enumerations") == 1
            stat = hub.histogram("evaluator.witnesses_per_answer")
            assert stat.count == 1
            assert stat.total == len(witnesses)

    def test_cleaning_run_covers_the_whole_taxonomy(self):
        dirty = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        with telemetry_session() as (hub, sink):
            report = QOCO(dirty, oracle, QOCOConfig(seed=7)).clean(EX1)
            assert report.converged
            assert hub.counter("qoco.iterations") == report.iterations
            assert hub.counter("deletion.invocations") == len(
                report.wrong_answers_removed
            )
            assert hub.counter("insertion.invocations") == len(
                report.missing_answers_added
            )
            assert hub.counter("oracle.cost.total") == report.log.total_cost
            # span hierarchy: phases nested under the clean span
            assert "qoco.clean" in sink.span_names()
            assert any(
                path.startswith("qoco.clean/qoco.deletion_phase")
                for path in sink.span_paths()
            )
            assert any(
                path == "qoco.clean/qoco.insertion_phase/insertion.add_answer"
                for path in sink.span_paths()
            )

    def test_parallel_round_accounting(self):
        dirty = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        with telemetry_session() as (hub, _):
            report = ParallelQOCO(dirty, oracle, seed=7).clean(EX1)
            assert hub.counter("parallel.rounds") == report.rounds
            stat = hub.histogram("parallel.round_width")
            assert stat.count == report.rounds
            assert stat.maximum <= report.peak_width
            assert hub.counter("parallel.iterations") == report.iterations

    def test_view_maintenance_counters(self, worldcup_gt):
        from repro.views.materialized import MaterializedView

        db = worldcup_gt.copy()
        with telemetry_session() as (hub, _):
            view = MaterializedView(EX1, db)
            assert hub.counter("view.refreshes") == 1
            # a genuine no-op: re-announcing an already-accounted fact
            existing = next(iter(db.facts(next(iter(view._relations)))))
            view.on_insert(existing)
            assert hub.counter("view.noop_edits") == 1

    def test_disabled_telemetry_counts_nothing(self, worldcup_gt):
        assert not TELEMETRY.enabled
        evaluate(EX1, worldcup_gt)
        assert TELEMETRY.counters() == {}
