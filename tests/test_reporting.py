"""Unit tests for the plain-text reporting helpers."""

from repro.experiments.reporting import (
    render_category_stack,
    render_figure,
    render_stacked_bar,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_values_stringified(self):
        text = render_table(["x"], [[None], [True]])
        assert "None" in text
        assert "True" in text

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text


class TestRenderStackedBar:
    def test_proportions(self):
        bar = render_stacked_bar([5, 5, 10], 20)
        assert bar.count("#") == 10
        assert bar.count("=") == 10
        assert bar.count(".") == 20

    def test_zero_total(self):
        assert render_stacked_bar([1, 2], 0) == ""


class TestRenderFigure:
    def test_title_and_notes(self):
        text = render_figure("T", ["h"], [[1]], notes=["a note"])
        assert text.startswith("T\n=")
        assert "a note" in text

    def test_ends_with_newline(self):
        assert render_figure("T", ["h"], [[1]]).endswith("\n")


class TestRenderCategoryStack:
    def test_rows_and_total(self):
        text = render_category_stack(
            {"run1": {"a": 1, "b": 2}, "run2": {"a": 3, "b": 4}}
        )
        assert "run1" in text
        assert "3" in text  # total of run1
        assert "7" in text  # total of run2
