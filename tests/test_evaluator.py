"""Unit tests for the query evaluator (assignments, answers, witnesses)."""

import pytest

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.query.ast import QueryError, Var
from repro.query.evaluator import (
    Evaluator,
    answer_to_partial,
    evaluate,
    instantiate_head,
    is_satisfiable,
    naive_evaluate,
    valid_assignments,
    witness_of,
    witnesses_for,
)
from repro.query.parser import parse_query


@pytest.fixture
def db():
    schema = Schema.from_dict(
        {"games": ["d", "w", "l", "s", "r"], "teams": ["t", "c"]}
    )
    return Database(
        schema,
        [
            fact("games", "d1", "GER", "ARG", "Final", "1:0"),
            fact("games", "d2", "GER", "NED", "Final", "2:1"),
            fact("games", "d3", "BRA", "GER", "Final", "2:0"),
            fact("teams", "GER", "EU"),
            fact("teams", "BRA", "SA"),
            fact("teams", "ARG", "SA"),
            fact("teams", "NED", "EU"),
        ],
    )


TWO_WINS = parse_query(
    'q(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
    'teams(x, "EU"), d1 != d2.'
)


class TestEvaluate:
    def test_basic_join(self, db):
        q = parse_query('q(x) :- games(d, x, y, "Final", r), teams(x, "EU").')
        assert evaluate(q, db) == {("GER",)}

    def test_self_join_with_inequality(self, db):
        assert evaluate(TWO_WINS, db) == {("GER",)}

    def test_inequality_filters(self, db):
        q = parse_query('q(x) :- games(d1, x, y, "Final", u), x != "GER".')
        assert evaluate(q, db) == {("BRA",)}

    def test_empty_result(self, db):
        q = parse_query('q(x) :- teams(x, "AF").')
        assert evaluate(q, db) == set()

    def test_constant_only_atom(self, db):
        q = parse_query('q(x) :- teams("GER", "EU"), teams(x, "SA").')
        assert evaluate(q, db) == {("BRA",), ("ARG",)}

    def test_constant_only_atom_absent(self, db):
        q = parse_query('q(x) :- teams("GER", "AF"), teams(x, "SA").')
        assert evaluate(q, db) == set()

    def test_repeated_variable_in_atom(self, db):
        db.insert(fact("games", "d9", "ARG", "ARG", "Group", "0:0"))
        q = parse_query("q(x) :- games(d, x, x, s, r).")
        assert evaluate(q, db) == {("ARG",)}

    def test_multi_variable_head(self, db):
        q = parse_query('q(x, y) :- games(d, x, y, "Final", r), teams(y, "SA").')
        assert evaluate(q, db) == {("GER", "ARG")}

    def test_matches_naive_semantics(self, db):
        for q in (
            TWO_WINS,
            parse_query('q(x, c) :- teams(x, c), games(d, x, l, s, r), c != "SA".'),
        ):
            assert evaluate(q, db) == naive_evaluate(q, db)


class TestAssignments:
    def test_assignment_count(self, db):
        # GER has two distinct final wins; (d1,d2) ordered pairs => 2.
        assignments = list(valid_assignments(TWO_WINS, db))
        assert len(assignments) == 2

    def test_assignments_are_total(self, db):
        for assignment in valid_assignments(TWO_WINS, db):
            assert set(assignment) == TWO_WINS.variables()

    def test_partial_restriction(self, db):
        partial = {Var("x"): "GER"}
        assert len(list(valid_assignments(TWO_WINS, db, partial))) == 2
        partial = {Var("x"): "BRA"}
        assert list(valid_assignments(TWO_WINS, db, partial)) == []

    def test_partial_violating_inequality_prunes_immediately(self, db):
        partial = {Var("d1"): "d1", Var("d2"): "d1"}
        assert list(valid_assignments(TWO_WINS, db, partial)) == []

    def test_yields_fresh_dicts(self, db):
        seen = list(valid_assignments(TWO_WINS, db))
        assert seen[0] is not seen[1]


class TestSatisfiability:
    def test_satisfiable(self, db):
        assert is_satisfiable(TWO_WINS, db, {Var("x"): "GER"})

    def test_unsatisfiable(self, db):
        assert not is_satisfiable(TWO_WINS, db, {Var("x"): "BRA"})

    def test_empty_partial(self, db):
        assert is_satisfiable(TWO_WINS, db, {})


class TestWitnesses:
    def test_witness_facts(self, db):
        witnesses = witnesses_for(TWO_WINS, db, ("GER",))
        assert len(witnesses) == 1  # the two assignments share one fact set
        (witness,) = witnesses
        assert fact("teams", "GER", "EU") in witness
        assert len(witness) == 3

    def test_witness_dedup_symmetry(self, fig1_dirty):
        from repro.workloads import EX1

        # ESP: 4 final wins => C(4,2)=6 unordered pairs (12 assignments).
        assert len(witnesses_for(EX1, fig1_dirty, ("ESP",))) == 6

    def test_no_witnesses_for_non_answer(self, db):
        assert witnesses_for(TWO_WINS, db, ("BRA",)) == []

    def test_witness_of_requires_total(self, db):
        with pytest.raises(QueryError):
            witness_of(TWO_WINS, {Var("x"): "GER"})


class TestAnswerToPartial:
    def test_basic(self):
        partial = answer_to_partial(TWO_WINS, ("GER",))
        assert partial == {Var("x"): "GER"}

    def test_wrong_length(self):
        assert answer_to_partial(TWO_WINS, ("GER", "extra")) is None

    def test_head_constant_match(self):
        q = parse_query('q("GER", x) :- teams(x, c).')
        assert answer_to_partial(q, ("GER", "BRA")) == {Var("x"): "BRA"}
        assert answer_to_partial(q, ("FRA", "BRA")) is None

    def test_repeated_head_variable(self):
        q = parse_query("q(x, x) :- teams(x, c).")
        assert answer_to_partial(q, ("GER", "GER")) == {Var("x"): "GER"}
        assert answer_to_partial(q, ("GER", "BRA")) is None


class TestInstantiateHead:
    def test_basic(self):
        assert instantiate_head(TWO_WINS, {Var("x"): "GER"}) == ("GER",)

    def test_missing_binding(self):
        with pytest.raises(QueryError):
            instantiate_head(TWO_WINS, {})

    def test_constant_in_head(self):
        q = parse_query('q("GER", x) :- teams(x, c).')
        assert instantiate_head(q, {Var("x"): "BRA"}) == ("GER", "BRA")


class TestEvaluatorValidation:
    def test_rejects_query_not_matching_schema(self, db):
        q = parse_query("q(x) :- unknown(x).")
        with pytest.raises(Exception):
            Evaluator(q, db)


class TestNaiveEvaluateSnapshots:
    """``naive_evaluate`` snapshots each relation once per evaluation,
    however many atom occurrences (self-joins) reference it."""

    class _CountingDatabase(Database):
        def __init__(self, schema, facts):
            super().__init__(schema, facts)
            self.facts_calls = {}

        def facts(self, relation):
            self.facts_calls[relation] = self.facts_calls.get(relation, 0) + 1
            return super().facts(relation)

    def _counting_db(self):
        schema = Schema.from_dict(
            {"games": ["d", "w", "l", "s", "r"], "teams": ["t", "c"]}
        )
        return self._CountingDatabase(
            schema,
            [
                fact("games", "d1", "GER", "ARG", "Final", "1:0"),
                fact("games", "d2", "GER", "NED", "Final", "2:1"),
                fact("teams", "GER", "EU"),
                fact("teams", "NED", "EU"),
            ],
        )

    def test_one_snapshot_per_distinct_relation(self):
        db = self._counting_db()
        answers = naive_evaluate(TWO_WINS, db)  # two games atoms, one teams
        assert answers == {("GER",)}
        assert db.facts_calls == {"games": 1, "teams": 1}

    def test_triple_self_join_still_one_snapshot(self):
        db = self._counting_db()
        q = parse_query(
            "q(x) :- games(d1, x, y, s1, r1), games(d2, x, z, s2, r2), "
            "games(d3, x, w, s3, r3)."
        )
        naive_evaluate(q, db)
        assert db.facts_calls == {"games": 1}
