"""Constraint language, violation detection, and oracle-guided repair.

Covers the ``repro.constraints`` package: FD/denial-constraint
compilation to boolean CQs, backend-pluggable detection, the
hitting-set repair enumerator, and the two repairers the benchmark gate
compares (oracle-guided vs exhaustive).
"""

from __future__ import annotations

import copy

import pytest

import repro.api
from repro.constraints import (
    FD,
    CandidateRepair,
    ConstraintError,
    DenialConstraint,
    ExhaustiveRepairer,
    OracleRepairer,
    RepairBudget,
    Violation,
    candidate_repairs,
    find_violations,
    greedy_repair,
    minimal_deletion_repairs,
    parse_fd,
    repair,
    satisfies,
    violation_hypergraph,
)
from repro.constraints.repair import RepairError, inferable_deletions, update_candidates
from repro.core.registry import REGISTRY
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact, fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Atom, Var


def games_schema() -> Schema:
    return Schema([RelationSchema("games", ("date", "winner", "result"))])


def games_db(rows) -> Database:
    db = Database(games_schema())
    for row in rows:
        db.insert(fact("games", *row))
    return db


CLEAN_ROWS = [
    ("1998-07-12", "FRA", "3-0"),
    ("2002-06-30", "BRA", "2-0"),
    ("2006-07-09", "ITA", "1-1"),
]


class TestConstraintAst:
    def test_parse_fd_round_trips(self):
        fd = parse_fd("games: date -> winner, result")
        assert fd == FD("games", ("date",), ("winner", "result"))
        assert str(fd) == "games: date -> winner, result"
        assert fd.name == "fd:games:date->winner,result"

    def test_parse_fd_rejects_malformed(self):
        with pytest.raises(ConstraintError):
            parse_fd("no arrow here")
        with pytest.raises(ConstraintError):
            parse_fd("date -> winner")  # no relation prefix
        with pytest.raises(ConstraintError):
            FD("games", (), ("winner",))
        with pytest.raises(ConstraintError):
            FD("games", ("date",), ())
        with pytest.raises(ConstraintError):
            FD("games", ("date",), ("date",))  # overlapping sides

    def test_fd_positions_resolve_against_schema(self):
        fd = parse_fd("games: date -> result")
        assert fd.positions(games_schema()) == ((0,), (2,))
        with pytest.raises(ConstraintError):
            parse_fd("games: nope -> result").positions(games_schema())
        with pytest.raises(ConstraintError):
            parse_fd("missing: a -> b").positions(games_schema())

    def test_denial_constraint_is_a_boolean_query(self):
        dc = DenialConstraint(
            atoms=(Atom("games", (Var("d"), Var("w"), Var("r"))),),
            label="no-games",
        )
        query = dc.as_query()
        assert query.head == ()
        assert query.name == "dc:no-games"
        with pytest.raises(ConstraintError):
            DenialConstraint(atoms=())


class TestViolationDetection:
    def test_clean_instance_has_no_violations(self):
        db = games_db(CLEAN_ROWS)
        assert find_violations(db, "games: date -> winner") == []
        assert satisfies(db, "games: date -> winner")

    def test_fd_violation_is_the_conflicting_pair(self):
        rows = CLEAN_ROWS + [("1998-07-12", "BRA", "3-0")]
        db = games_db(rows)
        violations = find_violations(db, "games: date -> winner, result")
        assert len(violations) == 1
        (violation,) = violations
        assert violation.facts == frozenset(
            {
                fact("games", "1998-07-12", "FRA", "3-0"),
                fact("games", "1998-07-12", "BRA", "3-0"),
            }
        )
        assert violation.rhs_position == 1  # they differ on winner only
        assert not satisfies(db, "games: date -> winner, result")

    def test_multi_rhs_disagreements_are_separate_violations(self):
        rows = CLEAN_ROWS + [("1998-07-12", "BRA", "0-3")]
        db = games_db(rows)
        violations = find_violations(db, "games: date -> winner, result")
        # same pair, flagged once per disagreeing RHS attribute — but
        # deduped to distinct (constraint, witness) keys
        positions = {v.rhs_position for v in violations}
        assert positions == {1, 2}

    def test_denial_constraint_detection(self):
        db = games_db(CLEAN_ROWS)
        dc = DenialConstraint(
            atoms=(Atom("games", (Var("d"), "FRA", Var("r"))),),
            label="no-france",
        )
        violations = find_violations(db, dc)
        assert len(violations) == 1
        assert violations[0].facts == frozenset(
            {fact("games", "1998-07-12", "FRA", "3-0")}
        )

    @pytest.mark.parametrize("backend", ["naive", "columnar"])
    def test_detection_is_backend_agnostic(self, backend):
        rows = CLEAN_ROWS + [("2002-06-30", "GER", "2-0")]
        db = games_db(rows)
        violations = find_violations(db, "games: date -> winner", backend=backend)
        assert len(violations) == 1


class TestRepairEnumeration:
    def pair(self, a, b, rhs=1, name="fd"):
        return Violation(name, frozenset({a, b}), rhs)

    def test_minimal_deletion_repairs_are_hitting_sets(self):
        a = fact("games", "d1", "FRA", "r")
        b = fact("games", "d1", "BRA", "r")
        repairs = minimal_deletion_repairs([self.pair(a, b)])
        assert {frozenset(e.fact for e in r.edits) for r in repairs} == {
            frozenset({a}),
            frozenset({b}),
        }
        assert all(r.kind == "delete" and r.cost == 1 for r in repairs)

    def test_update_candidates_swap_the_rhs_cell(self):
        a = fact("games", "d1", "FRA", "r")
        b = fact("games", "d1", "BRA", "r")
        updates = update_candidates(self.pair(a, b))
        assert len(updates) == 2
        new_facts = {e.fact for u in updates for e in u.edits if e.kind.value == "+"}
        assert new_facts == {a.replace(1, "BRA"), b.replace(1, "FRA")}
        assert candidate_repairs([self.pair(a, b)], updates=True)

    def test_greedy_repair_prefers_shared_facts(self):
        shared = fact("games", "d1", "X", "r")
        others = [fact("games", "d1", f"Y{i}", "r") for i in range(3)]
        violations = [self.pair(shared, other) for other in others]
        chosen = greedy_repair(violations)
        assert {e.fact for e in chosen.edits} == {shared}
        with pytest.raises(RepairError):
            greedy_repair([])

    def test_inferable_deletions_lift_theorem_45(self):
        lone = fact("games", "d2", "Z", "r")
        assert inferable_deletions([Violation("dc", frozenset({lone}))]) == {lone}
        a = fact("games", "d1", "FRA", "r")
        b = fact("games", "d1", "BRA", "r")
        assert inferable_deletions([self.pair(a, b)]) is None

    def test_hypergraph_dedupes_edges(self):
        a = fact("games", "d1", "FRA", "r")
        b = fact("games", "d1", "BRA", "r")
        edges = violation_hypergraph([self.pair(a, b), self.pair(a, b, rhs=2)])
        assert edges == [frozenset({a, b})]

    def test_candidate_repair_validation(self):
        with pytest.raises(RepairError):
            CandidateRepair.deletion([])
        a = fact("games", "d1", "FRA", "r")
        with pytest.raises(RepairError):
            CandidateRepair.update(a, a)


FDSPEC = "games: date -> winner, result"


def dirty_pair_db():
    """Clean rows plus one conflicting twin per clean row."""
    truth = games_db(CLEAN_ROWS)
    dirty = copy.deepcopy(truth)
    for row in CLEAN_ROWS:
        dirty.insert(fact("games", row[0], row[1] + "_WRONG", row[2]))
    return truth, dirty


class TestOracleRepairer:
    def test_reaches_consistency_and_truth(self):
        truth, dirty = dirty_pair_db()
        report = OracleRepairer(dirty, PerfectOracle(truth), FDSPEC).run()
        assert report.consistent and report.converged
        assert dirty == truth
        assert report.questions_asked > 0
        assert "question" in report.summary()

    def test_strictly_fewer_questions_than_exhaustive(self):
        truth, dirty = dirty_pair_db()
        guided = OracleRepairer(
            copy.deepcopy(dirty), PerfectOracle(truth), FDSPEC
        ).run()
        blunt = ExhaustiveRepairer(
            copy.deepcopy(dirty), PerfectOracle(truth), FDSPEC
        ).run()
        assert guided.consistent and blunt.consistent
        assert guided.questions_asked < blunt.questions_asked

    def test_pair_inference_saves_questions(self):
        # one shared wrong fact conflicting with several true ones:
        # after the shared fact is deleted, edges vanish; after a true
        # fact is certified, its pair partner is inferred false free.
        truth = games_db(CLEAN_ROWS)
        dirty = copy.deepcopy(truth)
        dirty.insert(fact("games", "1998-07-12", "XXX", "3-0"))
        oracle = AccountingOracle(PerfectOracle(truth))
        report = OracleRepairer(dirty, oracle, "games: date -> winner").run()
        assert report.consistent
        # one question decides the pair, whichever side was asked
        assert report.questions_asked == 1

    def test_singleton_edges_are_free(self):
        truth = games_db(CLEAN_ROWS)
        dirty = copy.deepcopy(truth)
        dc = DenialConstraint(
            atoms=(Atom("games", (Var("d"), "GER_FAKE", Var("r"))),),
            label="no-fake",
        )
        dirty.insert(fact("games", "2010-07-11", "GER_FAKE", "1-0"))
        report = OracleRepairer(dirty, PerfectOracle(truth), dc).run()
        assert report.consistent
        assert report.questions_asked == 0  # singleton ⇒ certainly false
        assert report.free_deletions == 1

    def test_budget_exhaustion_degrades_not_fails(self):
        truth, dirty = dirty_pair_db()
        report = OracleRepairer(
            dirty, PerfectOracle(truth), FDSPEC, budget=RepairBudget(max_cost=1)
        ).run()
        assert report.consistent  # best-effort greedy still repaired
        assert not report.converged  # ... but uncertified
        assert report.questions_asked <= 1

    def test_value_updates_restore_rows(self):
        # truth holds two same-date rows agreeing on winner; the dirty
        # copy mis-spells one winner.  A pure deletion repair loses the
        # row; the update repair rewrites the winner cell back.
        truth = games_db(CLEAN_ROWS + [("1998-07-12", "FRA", "2-1")])
        dirty = games_db(CLEAN_ROWS + [("1998-07-12", "BRA", "2-1")])
        report = OracleRepairer(
            dirty, PerfectOracle(truth), "games: date -> winner", updates=True
        ).run()
        assert report.consistent
        assert report.updates_applied == 1
        assert dirty == truth

    def test_repair_budget_validation(self):
        with pytest.raises(ValueError):
            RepairBudget(max_cost=-1)
        with pytest.raises(ValueError):
            RepairBudget(deadline=-0.1)
        with pytest.raises(ValueError):
            OracleRepairer(games_db([]), PerfectOracle(games_db([])), FDSPEC, max_rounds=0)


class TestRepairStrategies:
    def test_registry_knows_repair_strategies(self):
        names = REGISTRY.names("repair")
        assert {"oracle", "exhaustive", "greedy"} <= set(names)

    def test_repair_function_dispatches_by_name(self):
        truth, dirty = dirty_pair_db()
        report = repair(dirty, FDSPEC, PerfectOracle(truth), strategy="exhaustive")
        assert report.consistent
        assert report.query_name.startswith("exhaustive(")

    def test_greedy_strategy_asks_nothing(self):
        truth, dirty = dirty_pair_db()
        report = repair(dirty, FDSPEC, PerfectOracle(truth), strategy="greedy")
        assert report.consistent
        assert report.questions_asked == 0
        assert not report.converged

    def test_api_facade(self):
        truth, dirty = dirty_pair_db()
        report = repro.api.repair(dirty, FDSPEC, PerfectOracle(truth))
        assert report.consistent
        assert dirty == truth


class TestReportShape:
    def test_report_satisfies_reportlike(self):
        from repro.core.report import ReportLike

        truth, dirty = dirty_pair_db()
        report = repair(dirty, FDSPEC, PerfectOracle(truth))
        assert isinstance(report, ReportLike)
        assert report.total_cost == report.cost
        assert report.rounds >= 1
        assert report.wall_clock >= 0.0
