"""Unit tests for the DPLL SAT solver."""

import random

import pytest

from repro.hardness.sat import (
    SatError,
    clause_satisfying_rows,
    clause_variables,
    is_satisfying,
    solve,
    validate_formula,
)


class TestSolve:
    def test_trivial_sat(self):
        assert solve([(1,)]) == {1: True}

    def test_trivial_unsat(self):
        assert solve([(1,), (-1,)]) is None

    def test_simple_3cnf(self):
        formula = [(1, 2, 3), (-1, -2, -3), (1, -2, 3)]
        assignment = solve(formula)
        assert assignment is not None
        assert is_satisfying(formula, assignment)

    def test_unsat_pigeonhole_2_1(self):
        # Two pigeons, one hole: x1, x2, not both -> unsat with forcing.
        formula = [(1,), (2,), (-1, -2)]
        assert solve(formula) is None

    def test_assigns_all_variables(self):
        assignment = solve([(1, 2, 3)])
        assert set(assignment) == {1, 2, 3}

    def test_unit_propagation_chain(self):
        formula = [(1,), (-1, 2), (-2, 3), (-3, 4)]
        assignment = solve(formula)
        assert assignment == {1: True, 2: True, 3: True, 4: True}

    @pytest.mark.parametrize("seed", range(8))
    def test_random_3cnf_consistency(self, seed):
        # Brute force agrees with DPLL on small formulas.
        rng = random.Random(seed)
        n = 5
        formula = []
        for _ in range(rng.randint(3, 12)):
            variables = rng.sample(range(1, n + 1), 3)
            clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
            formula.append(clause)

        brute_sat = any(
            is_satisfying(formula, {v: bool((m >> (v - 1)) & 1) for v in range(1, n + 1)})
            for m in range(2 ** n)
        )
        result = solve(formula)
        assert (result is not None) == brute_sat
        if result is not None:
            assert is_satisfying(formula, result)


class TestValidation:
    def test_empty_clause_rejected(self):
        with pytest.raises(SatError):
            validate_formula([()])

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            validate_formula([(0,)])

    def test_variable_count(self):
        assert validate_formula([(1, -5), (2,)]) == 5


class TestClauseHelpers:
    def test_clause_variables_order_and_dedup(self):
        assert clause_variables((3, -1, 3)) == [3, 1]

    def test_satisfying_rows_seven_of_eight(self):
        rows = clause_satisfying_rows((1, 2, 3))
        assert len(rows) == 7
        assert (0, 0, 0) not in rows

    def test_satisfying_rows_negated(self):
        rows = clause_satisfying_rows((1, 2, -3))
        assert len(rows) == 7
        assert (0, 0, 1) not in rows

    def test_satisfying_rows_repeated_variable(self):
        rows = clause_satisfying_rows((1, -1, 2))
        # tautology over {x1, x2}: all four rows satisfy
        assert len(rows) == 4

    def test_is_satisfying_defaults_false(self):
        assert not is_satisfying([(1,)], {})
        assert is_satisfying([(-1,)], {})
