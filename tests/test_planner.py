"""Tests for statistics and cost-based join ordering."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import Fact, fact
from repro.query.evaluator import evaluate, naive_evaluate
from repro.query.parser import parse_query
from repro.query.planner import (
    PlannedEvaluator,
    StaleStatisticsError,
    Statistics,
    explain,
    plan_order,
)
from repro.query.ast import Var


@pytest.fixture
def db():
    schema = Schema.from_dict(
        {"big": ["a", "b"], "small": ["b", "c"], "lookup": ["c"]}
    )
    database = Database(schema)
    for i in range(200):
        database.insert(fact("big", i, i % 20))
    for i in range(10):
        database.insert(fact("small", i % 20, i))
    database.insert(fact("lookup", 3))
    return database


class TestStatistics:
    def test_cardinalities(self, db):
        stats = Statistics(db)
        assert stats.cardinality["small"] == 10
        assert stats.cardinality["lookup"] == 1

    def test_distinct_counts(self, db):
        stats = Statistics(db)
        assert stats.distinct[("small", 1)] == 10
        assert stats.distinct[("lookup", 0)] == 1

    def test_estimate_unbound(self, db):
        stats = Statistics(db)
        atom = parse_query("q(a, b) :- big(a, b).").atoms[0]
        assert stats.estimate(atom, set()) == 200

    def test_estimate_bound_variable(self, db):
        stats = Statistics(db)
        atom = parse_query("q(a, b) :- big(a, b).").atoms[0]
        estimate = stats.estimate(atom, {Var("a")})
        assert estimate == pytest.approx(200 / 200)

    def test_estimate_constant(self, db):
        stats = Statistics(db)
        atom = parse_query("q(b) :- big(3, b).").atoms[0]
        assert stats.estimate(atom, set()) == pytest.approx(200 / 200)

    def test_estimate_bound_low_cardinality_column(self, db):
        stats = Statistics(db)
        atom = parse_query("q(a, b) :- big(a, b).").atoms[0]
        estimate = stats.estimate(atom, {Var("b")})
        assert estimate == pytest.approx(200 / 20)

    def test_estimate_empty_relation(self, db):
        db.delete(fact("lookup", 3))
        stats = Statistics(db)
        atom = parse_query("q(c) :- lookup(c).").atoms[0]
        assert stats.estimate(atom, set()) == 0.0


class TestStatisticsStaleness:
    """Regression: statistics snapshotted before mid-cleaning edits must
    not silently drive the planner with stale cardinalities."""

    def test_fresh_statistics_not_stale(self, db):
        stats = Statistics(db)
        assert not stats.stale
        stats.ensure_fresh()  # no-op

    def test_edit_marks_statistics_stale(self, db):
        stats = Statistics(db)
        db.insert(fact("lookup", 4))
        assert stats.stale

    def test_refresh_policy_resyncs_on_use(self, db):
        stats = Statistics(db)
        for i in range(5):
            db.insert(fact("lookup", 10 + i))
        stats.ensure_fresh()
        assert not stats.stale
        assert stats.cardinality["lookup"] == 6
        assert stats.distinct[("lookup", 0)] == 6

    def test_raise_policy_raises_on_use(self, db):
        stats = Statistics(db, on_stale="raise")
        db.insert(fact("lookup", 4))
        with pytest.raises(StaleStatisticsError):
            stats.ensure_fresh()
        stats.refresh()  # explicit resync clears the condition
        stats.ensure_fresh()

    def test_invalid_policy_rejected(self, db):
        with pytest.raises(ValueError):
            Statistics(db, on_stale="ignore")

    def test_refresh_skips_untouched_relations(self, db):
        from repro.telemetry import telemetry_session

        stats = Statistics(db)
        with telemetry_session() as (hub, _):
            db.insert(fact("lookup", 4))
            stats.ensure_fresh()
            assert hub.counter("planner.statistics_refreshes") == 1
        # only "lookup" moved; the other relations kept their entries
        assert stats.cardinality["big"] == 200
        assert stats.cardinality["lookup"] == 2

    def test_planned_evaluator_sees_mid_cleaning_edits(self, db):
        q = parse_query("q(a, c) :- big(a, b), small(b, c), lookup(c).")
        evaluator = PlannedEvaluator(q, db)
        baseline = evaluator.answers()
        # a mid-cleaning edit lands *after* the evaluator was built
        db.insert(fact("lookup", 0))
        refreshed = evaluator.answers()
        assert refreshed == evaluate(q, db)
        assert refreshed != baseline
        assert not evaluator.statistics.stale


class TestPlanOrder:
    def test_selective_atom_first(self, db):
        q = parse_query("q(a) :- big(a, b), small(b, c), lookup(c).")
        order = plan_order(q, Statistics(db))
        assert order[0] == 2  # lookup has cardinality 1
        assert order[-1] == 0  # the big scan goes last

    def test_initially_bound_changes_order(self, db):
        q = parse_query("q(a) :- big(a, b), small(b, c).")
        stats = Statistics(db)
        free = plan_order(q, stats)
        pinned = plan_order(q, stats, initially_bound={Var("a")})
        assert free[0] == 1  # small first when nothing is bound
        assert pinned[0] == 0  # bound a makes big selective

    def test_explain_renders(self, db):
        q = parse_query("q(a) :- big(a, b), small(b, c), lookup(c).")
        explanation = explain(q, Statistics(db))
        text = explanation.render(q)
        assert "lookup" in text
        assert "est." in text
        assert len(explanation.estimates) == 3


class TestPlannedEvaluator:
    def test_same_results_as_default(self, db):
        q = parse_query("q(a, c) :- big(a, b), small(b, c), lookup(c).")
        assert PlannedEvaluator(q, db).answers() == evaluate(q, db)

    def test_same_results_on_workload(self, worldcup_gt):
        from repro.workloads import Q1, Q3, Q5

        for q in (Q1, Q3, Q5):
            planned = PlannedEvaluator(q, worldcup_gt).answers()
            assert planned == evaluate(q, worldcup_gt)

    def test_partial_assignments_respected(self, db):
        q = parse_query("q(a, c) :- big(a, b), small(b, c).")
        evaluator = PlannedEvaluator(q, db)
        partial = {Var("a"): 3}
        for assignment in evaluator.assignments(partial):
            assert assignment[Var("a")] == 3


CONSTANTS = ["a", "b", "c"]
SCHEMA = Schema.from_dict({"r": ["p", "q"], "s": ["p"]})


@st.composite
def small_databases(draw):
    rows = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("r"), st.tuples(st.sampled_from(CONSTANTS), st.sampled_from(CONSTANTS))),
                st.tuples(st.just("s"), st.tuples(st.sampled_from(CONSTANTS))),
            ),
            max_size=15,
        )
    )
    return Database(SCHEMA, [Fact(rel, values) for rel, values in rows])


@given(db=small_databases())
@settings(max_examples=60, deadline=None)
def test_planned_evaluator_matches_naive(db):
    q = parse_query("q(p) :- r(p, q), s(q), p != q.")
    assert PlannedEvaluator(q, db).answers() == naive_evaluate(q, db)
