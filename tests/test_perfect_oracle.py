"""Unit tests for the perfect oracle."""

from repro.datasets.figure1 import ITA_EU
from repro.db.tuples import fact
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Var
from repro.query.evaluator import witness_of
from repro.workloads import EX1, EX2


class TestClosedQuestions:
    def test_verify_fact(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        assert oracle.verify_fact(fact("teams", "ESP", "EU"))
        assert not oracle.verify_fact(fact("teams", "BRA", "EU"))
        assert oracle.verify_fact(ITA_EU)  # in D_G though missing from D

    def test_verify_answer(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        assert oracle.verify_answer(EX1, ("GER",))
        assert oracle.verify_answer(EX1, ("ITA",))
        assert not oracle.verify_answer(EX1, ("ESP",))

    def test_verify_candidate_partial(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        assert oracle.verify_candidate(EX1, {Var("x"): "ITA"})
        assert not oracle.verify_candidate(EX1, {Var("x"): "ESP"})

    def test_verify_candidate_total(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        assignment = oracle.complete_assignment(EX1, {Var("x"): "GER"})
        assert oracle.verify_candidate(EX1, assignment)


class TestOpenQuestions:
    def test_complete_assignment_extends_partial(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        partial = {Var("x"): "ITA"}
        full = oracle.complete_assignment(EX1, partial)
        assert full is not None
        assert full[Var("x")] == "ITA"
        # the completed witness holds in D_G
        for f in witness_of(EX1, full):
            assert f in fig1_gt

    def test_complete_assignment_unsatisfiable(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        assert oracle.complete_assignment(EX1, {Var("x"): "ESP"}) is None

    def test_complete_result_returns_missing(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        missing = oracle.complete_result(EX1, [("GER",)])
        assert missing == ("ITA",)

    def test_complete_result_none_when_complete(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        assert oracle.complete_result(EX1, [("GER",), ("ITA",)]) is None

    def test_complete_result_deterministic(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        first = oracle.complete_result(EX2, [])
        second = oracle.complete_result(EX2, [])
        assert first == second

    def test_complete_result_ignores_extra_known(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        # wrong answers in the known set don't confuse the oracle
        missing = oracle.complete_result(EX1, [("GER",), ("ESP",)])
        assert missing == ("ITA",)


class TestMemoization:
    def test_true_answers_cached_per_query(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        oracle.verify_answer(EX1, ("GER",))
        cached = oracle._answers_cache
        assert len(cached) == 1
        oracle.verify_answer(EX1, ("ITA",))
        assert len(cached) == 1  # same query object, one evaluation
