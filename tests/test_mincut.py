"""Unit tests for Stoer–Wagner global min cut (networkx as oracle)."""

import random

import networkx as nx
import pytest

from repro.mincut.stoer_wagner import GraphCutError, minimum_cut


class TestBasics:
    def test_two_nodes(self):
        weight, a, b = minimum_cut([0, 1], {(0, 1): 3.0})
        assert weight == 3.0
        assert a | b == {0, 1}
        assert a and b

    def test_disconnected_graph_zero_cut(self):
        weight, a, b = minimum_cut([0, 1, 2, 3], {(0, 1): 5.0, (2, 3): 5.0})
        assert weight == 0.0
        assert (a == {0, 1} and b == {2, 3}) or (a == {2, 3} and b == {0, 1})

    def test_bridge(self):
        # Two triangles connected by one light edge: cut = the bridge.
        edges = {
            (0, 1): 2.0, (1, 2): 2.0, (0, 2): 2.0,
            (3, 4): 2.0, (4, 5): 2.0, (3, 5): 2.0,
            (2, 3): 1.0,
        }
        weight, a, b = minimum_cut(range(6), edges)
        assert weight == 1.0
        assert {frozenset(a), frozenset(b)} == {
            frozenset({0, 1, 2}), frozenset({3, 4, 5})
        }

    def test_duplicate_orientations_summed(self):
        weight, _, _ = minimum_cut([0, 1], {(0, 1): 1.0, (1, 0): 2.0})
        assert weight == 3.0

    def test_self_loops_ignored(self):
        weight, _, _ = minimum_cut([0, 1], {(0, 0): 9.0, (0, 1): 1.0})
        assert weight == 1.0


class TestErrors:
    def test_single_node_rejected(self):
        with pytest.raises(GraphCutError):
            minimum_cut([0], {})

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphCutError):
            minimum_cut([0, 1], {(0, 1): -1.0})

    def test_unknown_node_rejected(self):
        with pytest.raises(GraphCutError):
            minimum_cut([0, 1], {(0, 9): 1.0})


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 9)
        nodes = list(range(n))
        edges = {}
        # Random connected-ish graph.
        for i in range(1, n):
            edges[(rng.randrange(i), i)] = float(rng.randint(1, 5))
        for _ in range(rng.randint(0, 2 * n)):
            u, v = rng.sample(nodes, 2)
            key = (min(u, v), max(u, v))
            edges[key] = edges.get(key, 0.0) + float(rng.randint(1, 5))

        weight, a, b = minimum_cut(nodes, edges)

        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        for (u, v), w in edges.items():
            if graph.has_edge(u, v):
                graph[u][v]["weight"] += w
            else:
                graph.add_edge(u, v, weight=w)
        expected, _ = nx.stoer_wagner(graph)
        assert weight == pytest.approx(expected)

        # Returned sides actually induce the reported weight.
        crossing = sum(
            w
            for (u, v), w in edges.items()
            if (u in a) != (v in a)
        )
        assert crossing == pytest.approx(weight)
