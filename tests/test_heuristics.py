"""Tests for the alternative deletion heuristics (§4 variants)."""

import random


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deletion import QOCODeletion, crowd_remove_wrong_answer
from repro.core.heuristics import (
    ResponsibilityDeletion,
    TrustScoreDeletion,
    frequency_trust,
)
from repro.oracle.base import Oracle
from repro.datasets.figure1 import ESP_EU, figure1_dirty
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate
from repro.workloads import EX1


class TestResponsibility:
    def test_fact_in_every_witness_has_responsibility_one(self):
        sets = [frozenset({1, 2}), frozenset({1, 3})]
        assert ResponsibilityDeletion.responsibility(1, sets) == 1.0

    def test_contingency_lowers_responsibility(self):
        sets = [frozenset({1, 2}), frozenset({3, 4})]
        # 1 is counterfactual only after removing one fact of {3, 4}.
        assert ResponsibilityDeletion.responsibility(1, sets) == 0.5

    def test_chooses_shared_fact_first(self, fig1_dirty):
        from repro.query.evaluator import witnesses_for

        sets = [frozenset(w) for w in witnesses_for(EX1, fig1_dirty, ("ESP",))]
        choice = ResponsibilityDeletion().choose(sets, random.Random(0))
        assert choice == ESP_EU  # in all six witnesses -> responsibility 1

    def test_cleans_wrong_answer(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle,
            ResponsibilityDeletion(), random.Random(0),
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
        assert ESP_EU in fig1_dirty


class TestTrustScores:
    def test_least_trusted_first(self):
        scores = {1: 0.9, 2: 0.1, 3: 0.5}
        strategy = TrustScoreDeletion(scores)
        sets = [frozenset({1, 2}), frozenset({2, 3})]
        assert strategy.choose(sets, random.Random(0)) == 2

    def test_default_trust_for_unknown_facts(self):
        strategy = TrustScoreDeletion({1: 0.9}, default_trust=0.2)
        sets = [frozenset({1, 7})]
        assert strategy.choose(sets, random.Random(0)) == 7

    def test_callable_provider(self):
        strategy = TrustScoreDeletion(lambda f: 0.0 if f == 5 else 1.0)
        sets = [frozenset({4, 5, 6})]
        assert strategy.choose(sets, random.Random(0)) == 5

    def test_informed_trust_reduces_questions(self, fig1_gt):
        # Trust scores that flag Spain's fabricated wins let the strategy
        # hit a false fact immediately.
        def informed(f):
            return 1.0 if f in fig1_gt else 0.0

        db = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, db, ("ESP",), oracle, TrustScoreDeletion(informed), random.Random(0)
        )
        informed_cost = oracle.log.total_cost

        db = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, db, ("ESP",), oracle,
            TrustScoreDeletion(lambda f: 0.5), random.Random(0),
        )
        flat_cost = oracle.log.total_cost
        assert informed_cost <= flat_cost

    def test_frequency_trust(self):
        counts = {fact("teams", "GER", "EU"): 5, fact("teams", "BRA", "EU"): 1}
        trust = frequency_trust(counts)
        assert trust(fact("teams", "GER", "EU")) == 1.0
        assert trust(fact("teams", "BRA", "EU")) == 0.2
        assert trust(fact("teams", "XXX", "EU")) == 0.0

    def test_cleans_wrong_answer(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle,
            TrustScoreDeletion(lambda f: 0.5), random.Random(0),
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)


class TestResponsibilityByHand:
    """Responsibility values checked against hand-computed contingency
    sets (Meliou et al.: responsibility = 1 / (1 + |Γ|))."""

    SETS = [frozenset({1, 2}), frozenset({1, 3}), frozenset({4, 5})]

    def test_counterfactual_fact_scores_one(self):
        # 1 hits both of its witnesses, but {4, 5} survives: Γ = one of
        # {4} or {5}, so responsibility is 1 / (1 + 1).
        assert ResponsibilityDeletion.responsibility(1, self.SETS) == 0.5

    def test_small_contingency_beats_large(self):
        # For 4, the witnesses avoiding it are {1, 2} and {1, 3}; the
        # single fact 1 hits both, so Γ = {1} and responsibility is 1/2.
        assert ResponsibilityDeletion.responsibility(4, self.SETS) == 0.5
        # For 2, {1, 3} and {4, 5} are disjoint: |Γ| = 2, so 1/3.
        assert ResponsibilityDeletion.responsibility(2, self.SETS) == (
            1.0 / 3.0
        )

    def test_fact_in_every_witness_needs_no_contingency(self):
        sets = [frozenset({7, 1}), frozenset({7, 2}), frozenset({7})]
        assert ResponsibilityDeletion.responsibility(7, sets) == 1.0

    def test_choose_ranks_by_responsibility(self):
        # 1 (resp 1/2) outranks 2 and 3 (1/3 each) and ties 4, 5 at 1/2
        # broken by repr order.
        choice = ResponsibilityDeletion().choose(self.SETS, random.Random(0))
        assert ResponsibilityDeletion.responsibility(
            choice, self.SETS
        ) == max(
            ResponsibilityDeletion.responsibility(f, self.SETS)
            for s in self.SETS
            for f in s
        )


class _MembershipOracle(Oracle):
    """A fact oracle over an explicit false set, recording who was asked."""

    def __init__(self, false_facts):
        self.false_facts = set(false_facts)
        self.asked = []

    def verify_fact(self, fact):
        self.asked.append(fact)
        return fact not in self.false_facts

    def verify_answer(self, query, answer):  # pragma: no cover - unused
        raise NotImplementedError

    def verify_candidate(self, query, partial):  # pragma: no cover - unused
        raise NotImplementedError

    def complete_assignment(self, query, partial):  # pragma: no cover - unused
        raise NotImplementedError

    def complete_result(self, query, known):  # pragma: no cover - unused
        raise NotImplementedError


@st.composite
def witness_systems(draw):
    """A witness system where every witness contains >= 1 false fact —
    the precondition of Algorithm 1 (the answer *is* wrong)."""
    false_pool = draw(
        st.lists(st.integers(0, 3), min_size=1, max_size=4, unique=True)
    )
    true_pool = draw(
        st.lists(st.integers(10, 15), min_size=0, max_size=4, unique=True)
    )
    n_witnesses = draw(st.integers(1, 5))
    witnesses = []
    for _ in range(n_witnesses):
        false_part = draw(
            st.lists(st.sampled_from(false_pool), min_size=1, max_size=2)
        )
        true_part = (
            draw(st.lists(st.sampled_from(true_pool), min_size=0, max_size=2))
            if true_pool
            else []
        )
        witnesses.append(frozenset(false_part) | frozenset(true_part))
    return set(false_pool), witnesses


class TestTheorem45Property:
    """Theorem 4.5 (the singleton rule), as a property over random
    witness systems: every deletion Algorithm 1 emits is genuinely
    false, every witness is destroyed, and a fact inferred through a
    singleton witness is deleted without ever being asked."""

    @settings(max_examples=60, deadline=None)
    @given(witness_systems(), st.sampled_from(["qoco", "resp", "trust"]))
    def test_deletions_are_sound_and_complete(self, system, which):
        false_facts, witnesses = system
        strategy = {
            "qoco": QOCODeletion(),
            "resp": ResponsibilityDeletion(),
            "trust": TrustScoreDeletion({}),
        }[which]
        oracle = AccountingOracle(_MembershipOracle(false_facts))
        edits = crowd_remove_wrong_answer(
            EX1, None, ("w",), oracle, strategy, random.Random(0),
            apply=False, witnesses=witnesses,
        )
        deleted = {e.fact for e in edits}
        assert deleted <= false_facts  # soundness: only false facts go
        for witness in witnesses:  # completeness: every witness destroyed
            assert witness & deleted

    @settings(max_examples=60, deadline=None)
    @given(witness_systems())
    def test_singleton_witness_is_inferred_for_free(self, system):
        false_facts, witnesses = system
        # Plant a pure singleton witness around a fresh false fact: by
        # Theorem 4.5 its fact must be false and is never worth a question.
        planted = 99
        witnesses = witnesses + [frozenset({planted})]
        backend = _MembershipOracle(false_facts | {planted})
        edits = crowd_remove_wrong_answer(
            EX1, None, ("w",), AccountingOracle(backend),
            ResponsibilityDeletion(), random.Random(0),
            apply=False, witnesses=witnesses,
        )
        assert planted in {e.fact for e in edits}
        assert planted not in backend.asked
