"""Tests for the alternative deletion heuristics (§4 variants)."""

import random


from repro.core.deletion import crowd_remove_wrong_answer
from repro.core.heuristics import (
    ResponsibilityDeletion,
    TrustScoreDeletion,
    frequency_trust,
)
from repro.datasets.figure1 import ESP_EU, figure1_dirty
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate
from repro.workloads import EX1


class TestResponsibility:
    def test_fact_in_every_witness_has_responsibility_one(self):
        sets = [frozenset({1, 2}), frozenset({1, 3})]
        assert ResponsibilityDeletion.responsibility(1, sets) == 1.0

    def test_contingency_lowers_responsibility(self):
        sets = [frozenset({1, 2}), frozenset({3, 4})]
        # 1 is counterfactual only after removing one fact of {3, 4}.
        assert ResponsibilityDeletion.responsibility(1, sets) == 0.5

    def test_chooses_shared_fact_first(self, fig1_dirty):
        from repro.query.evaluator import witnesses_for

        sets = [frozenset(w) for w in witnesses_for(EX1, fig1_dirty, ("ESP",))]
        choice = ResponsibilityDeletion().choose(sets, random.Random(0))
        assert choice == ESP_EU  # in all six witnesses -> responsibility 1

    def test_cleans_wrong_answer(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle,
            ResponsibilityDeletion(), random.Random(0),
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
        assert ESP_EU in fig1_dirty


class TestTrustScores:
    def test_least_trusted_first(self):
        scores = {1: 0.9, 2: 0.1, 3: 0.5}
        strategy = TrustScoreDeletion(scores)
        sets = [frozenset({1, 2}), frozenset({2, 3})]
        assert strategy.choose(sets, random.Random(0)) == 2

    def test_default_trust_for_unknown_facts(self):
        strategy = TrustScoreDeletion({1: 0.9}, default_trust=0.2)
        sets = [frozenset({1, 7})]
        assert strategy.choose(sets, random.Random(0)) == 7

    def test_callable_provider(self):
        strategy = TrustScoreDeletion(lambda f: 0.0 if f == 5 else 1.0)
        sets = [frozenset({4, 5, 6})]
        assert strategy.choose(sets, random.Random(0)) == 5

    def test_informed_trust_reduces_questions(self, fig1_gt):
        # Trust scores that flag Spain's fabricated wins let the strategy
        # hit a false fact immediately.
        def informed(f):
            return 1.0 if f in fig1_gt else 0.0

        db = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, db, ("ESP",), oracle, TrustScoreDeletion(informed), random.Random(0)
        )
        informed_cost = oracle.log.total_cost

        db = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, db, ("ESP",), oracle,
            TrustScoreDeletion(lambda f: 0.5), random.Random(0),
        )
        flat_cost = oracle.log.total_cost
        assert informed_cost <= flat_cost

    def test_frequency_trust(self):
        counts = {fact("teams", "GER", "EU"): 5, fact("teams", "BRA", "EU"): 1}
        trust = frequency_trust(counts)
        assert trust(fact("teams", "GER", "EU")) == 1.0
        assert trust(fact("teams", "BRA", "EU")) == 0.2
        assert trust(fact("teams", "XXX", "EU")) == 0.0

    def test_cleans_wrong_answer(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle,
            TrustScoreDeletion(lambda f: 0.5), random.Random(0),
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
