"""Repair sessions ride the full session machinery.

A :class:`~repro.server.RepairSession` goes through the same admission,
fork/run/commit, tenant-ledger, WAL, and recovery paths as a cleaning
session — these tests pin each of those properties, ending with the
byte-level crash-injection matrix over a durable repair run.
"""

from __future__ import annotations

import copy

import pytest

import repro.api
from repro.constraints import find_violations
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import fact
from repro.durability import recover, recover_manager, run_crash_matrix
from repro.oracle.perfect import PerfectOracle
from repro.server import RepairSession, SessionManager, SessionState, TenantPolicy

FDSPEC = "games: date -> winner, result"


def games_db(rows) -> Database:
    db = Database(Schema([RelationSchema("games", ("date", "winner", "result"))]))
    for row in rows:
        db.insert(fact("games", *row))
    return db


CLEAN = [
    ("1998-07-12", "FRA", "3-0"),
    ("2002-06-30", "BRA", "2-0"),
    ("2006-07-09", "ITA", "1-1"),
]


def dirty_and_truth(extra=3):
    truth = games_db(CLEAN)
    dirty = copy.deepcopy(truth)
    for i, row in enumerate(CLEAN[:extra]):
        dirty.insert(fact("games", row[0], f"WRONG{i}", row[2]))
    return dirty, truth


class TestRepairSessionLifecycle:
    def test_commit_applies_repair_to_base(self):
        dirty, truth = dirty_and_truth()
        manager = SessionManager(dirty)
        session = manager.open_repair_session(FDSPEC, PerfectOracle(truth))
        assert isinstance(session, RepairSession)
        report = manager.run_all()
        assert session.state is SessionState.COMMITTED
        assert report.committed == 1
        assert dirty == truth  # the base, not just the fork, is repaired
        assert not find_violations(dirty, FDSPEC)
        assert session.total_cost == session.report.questions_asked

    def test_mixed_cleaning_and_repair_queue(self):
        from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
        from repro.workloads import EX1

        truth = figure1_ground_truth()
        dirty = figure1_dirty()
        manager = SessionManager(dirty)
        manager.open_session(EX1, PerfectOracle(truth))
        manager.open_repair_session(
            "teams: team -> continent", PerfectOracle(truth)
        )
        report = manager.run_all()
        assert report.committed == 2

    def test_tenant_budget_denies_repair_sessions(self):
        dirty, truth = dirty_and_truth()
        manager = SessionManager(dirty)
        policy = TenantPolicy(cost_budget=1)
        first = manager.open_repair_session(
            FDSPEC, PerfectOracle(truth), tenant="t", policy=policy
        )
        manager.run_all()
        assert first.state is SessionState.COMMITTED
        assert manager.ledger.spent("t") >= 1
        second = manager.open_repair_session(
            FDSPEC, PerfectOracle(truth), tenant="t", policy=policy
        )
        manager.run_all()
        assert second.state is SessionState.DENIED
        assert second.total_cost == 0

    def test_board_shares_fact_verdicts_across_repair_sessions(self):
        dirty, truth = dirty_and_truth()
        manager = SessionManager(dirty)  # share_answers=True default
        first = manager.open_repair_session(FDSPEC, PerfectOracle(truth), tenant="a")
        manager.run_all()
        paid = first.total_cost
        assert paid > 0
        # un-repair the base: the same wrong facts come back
        for i, row in enumerate(CLEAN):
            dirty.insert(fact("games", row[0], f"WRONG{i}", row[2]))
        second = manager.open_repair_session(FDSPEC, PerfectOracle(truth), tenant="b")
        manager.run_all()
        assert second.state is SessionState.COMMITTED
        # every verdict the first session bought is free on the board
        assert second.total_cost < paid or second.shared_hits > 0

    def test_strategy_and_options_reach_the_repairer(self):
        dirty, truth = dirty_and_truth()
        manager = SessionManager(dirty)
        session = manager.open_repair_session(
            FDSPEC, PerfectOracle(truth), strategy="greedy"
        )
        manager.run_all()
        assert session.state is SessionState.COMMITTED
        assert session.report.questions_asked == 0
        assert not find_violations(dirty, FDSPEC)

    def test_empty_constraints_rejected(self):
        dirty, truth = dirty_and_truth()
        manager = SessionManager(dirty)
        with pytest.raises(ValueError):
            manager.open_repair_session([], PerfectOracle(truth))


class TestRepairDurability:
    def durable_repair_run(self, tmp_path, *, sessions=2):
        dirty, truth = dirty_and_truth()
        manager = repro.api.serve(dirty, durable_path=tmp_path / "state")
        opened = [
            manager.open_repair_session(
                FDSPEC, PerfectOracle(truth), tenant=f"t{i}"
            )
            for i in range(sessions)
        ]
        report = manager.run_all()
        return manager, dirty, truth, opened, report

    def test_recovery_reaches_the_same_digest(self, tmp_path):
        manager, dirty, truth, opened, report = self.durable_repair_run(tmp_path)
        assert report.committed == len(opened)
        manager.close()
        state = recover(tmp_path / "state")
        assert state.digest == dirty.state_digest()
        assert state.database == truth
        resumed = recover_manager(tmp_path / "state")
        assert resumed.database == dirty
        resumed.close()

    def test_repair_commits_survive_every_crash_point(self, tmp_path):
        manager, dirty, truth, opened, report = self.durable_repair_run(tmp_path)
        assert report.committed == len(opened)
        matrix = run_crash_matrix(
            tmp_path / "state",
            live_database=dirty,
            live_ledger=manager.ledger.snapshot(),
            stride=1,
        )
        assert matrix.wal_bytes > 0
        assert matrix.ok, matrix.failures[:5]
        manager.close()

    def test_ledger_charges_persist(self, tmp_path):
        dirty, truth = dirty_and_truth()
        manager = repro.api.serve(dirty, durable_path=tmp_path / "state")
        manager.open_repair_session(FDSPEC, PerfectOracle(truth), tenant="t")
        manager.run_all()
        spent = manager.ledger.spent("t")
        assert spent > 0
        manager.close()
        state = recover(tmp_path / "state")
        assert state.ledger.get("t") == spent
