"""Spawn-safety of everything that crosses the shard process boundary.

Process mode uses the ``spawn`` start method (fresh interpreter, no
inherited state), so every payload must survive pickling *and* decode
identically on the far side.  These tests round-trip the wire objects
through an actual spawned echo process — the strictest check short of a
full cleaning run (which `test_shard_driver.py` covers).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import subprocess
import sys

import pytest

from repro.core.deletion import DELETION_STRATEGIES
from repro.core.insertion import InsertionConfig
from repro.core.qoco import QOCOConfig
from repro.core.split import SPLIT_STRATEGIES
from repro.datasets.worldcup import worldcup_partition_spec
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.durability import codec
from repro.durability.codec import CodecError
from repro.query.parser import parse_query
from repro.shard import PartitionSpec, ShardingError, payload_to_database
from repro.shard import wire
from repro.shard.worker import _echo_main

SCHEMA = Schema(
    [
        RelationSchema("m", ("k", "x")),
        RelationSchema("lab", ("x", "y")),
    ]
)

QUERIES = [
    "q(x) :- m(x, y).",
    "q(x, y) :- m(x, y), lab(y, z), y != z.",
    'q(x) :- m(x, y), not lab(y, "w").',
    'q(x) :- m(x, y), lab(y, z), not m(z, "a"), x != "b", y != z.',
]


def _spawn_echo(obj):
    """Round-trip *obj* through a spawned echo process."""
    context = mp.get_context("spawn")
    parent, child = context.Pipe()
    process = context.Process(target=_echo_main, args=(child,), daemon=True)
    process.start()
    child.close()
    try:
        parent.send(obj)
        echoed = parent.recv()
        parent.send("stop")
    finally:
        process.join(timeout=30)
        if process.is_alive():  # pragma: no cover - hang guard
            process.terminate()
            pytest.fail("echo process hung")
    return echoed


class TestConfigWire:
    @pytest.mark.parametrize("deletion", sorted(DELETION_STRATEGIES))
    @pytest.mark.parametrize("split", sorted(SPLIT_STRATEGIES))
    def test_roundtrip_all_registered_strategies(self, deletion, split):
        config = QOCOConfig(
            deletion=DELETION_STRATEGIES[deletion](),
            split=SPLIT_STRATEGIES[split](),
            insertion=InsertionConfig(max_candidates_per_subquery=5, max_subqueries=9),
            max_iterations=17,
            seed=13,
            backend="columnar",
        )
        obj = wire.config_to_obj(config)
        decoded = wire.config_from_obj(pickle.loads(pickle.dumps(obj)))
        assert wire.config_to_obj(decoded) == obj
        assert type(decoded.deletion_strategy) is type(config.deletion_strategy)
        assert decoded.max_iterations == 17 and decoded.seed == 13

    def test_roundtrip_string_names_and_planner(self):
        config = QOCOConfig(
            deletion="responsibility", split="mincut", planner="bandit", seed=3
        )
        obj = wire.config_to_obj(config)
        assert obj["deletion_strategy"] == "responsibility"
        assert obj["split_strategy"] == "mincut"
        assert obj["planner"] == "bandit"
        decoded = wire.config_from_obj(pickle.loads(pickle.dumps(obj)))
        assert type(decoded.deletion_strategy).__name__ == "ResponsibilityDeletion"
        assert type(decoded.split_strategy).__name__ == "MinCutSplit"
        assert decoded.planner == "bandit"

    def test_unknown_strategy_name_rejected(self):
        with pytest.raises(ShardingError, match="split"):
            wire.config_to_obj(QOCOConfig(split="no-such-split"))

    def test_planner_instance_rejected(self):
        from repro.plan import BanditPlanner

        with pytest.raises(ShardingError, match="planner"):
            wire.config_to_obj(
                QOCOConfig(planner=BanditPlanner(arms=("mincut",)))
            )

    def test_scheduler_factory_rejected(self):
        with pytest.raises(ShardingError, match="scheduler_factory"):
            wire.config_to_obj(QOCOConfig(scheduler_factory=lambda: None))

    def test_backend_instance_rejected(self):
        from repro.query.backend import resolve_backend

        with pytest.raises(ShardingError, match="backend"):
            wire.config_to_obj(QOCOConfig(backend=resolve_backend("naive")))

    def test_config_obj_survives_spawn(self):
        obj = wire.config_to_obj(QOCOConfig())
        assert _spawn_echo(obj) == obj


class TestQueryWire:
    @pytest.mark.parametrize("text", QUERIES)
    def test_queries_with_negation_and_inequalities_survive_spawn(self, text):
        query = parse_query(text)
        obj = codec.query_to_obj(query)
        echoed = _spawn_echo(obj)
        assert codec.query_from_obj(echoed) == query


class TestPayloadWire:
    def test_shard_payload_survives_spawn(self):
        db = Database(
            SCHEMA,
            [Fact("m", (k, f"x{k}")) for k in range(10)]
            + [Fact("lab", (f"x{k}", "y")) for k in range(10)],
        )
        spec = PartitionSpec.from_obj([{"relation": "m", "position": 0}])
        payloads = spec.partition_payloads(db, 3)
        shards = [payload_to_database(_spawn_echo(p)) for p in payloads]
        union = db.copy()
        # decoded shards cover the database exactly
        m_union = set()
        for shard_db in shards:
            m_union |= shard_db.facts("m")
            assert shard_db.facts("lab") == union.facts("lab")
        assert m_union == union.facts("m")

    def test_question_and_reply_objects_survive_pickle(self):
        query = parse_query(QUERIES[3])
        question = wire.question_to_obj(
            "complete_result", query=query, known=[("a",), ("b",)]
        )
        assert pickle.loads(pickle.dumps(question)) == question
        reply = wire.reply_to_obj("complete_result", ("c",))
        assert wire.reply_from_obj(
            "complete_result", pickle.loads(pickle.dumps(reply))
        ) == ("c",)

    def test_worldcup_spec_obj_survives_spawn(self):
        spec = worldcup_partition_spec()
        assert PartitionSpec.from_obj(_spawn_echo(spec.to_obj())) == spec


class TestSpawnSafeMain:
    STDIN_SCRIPT = """
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.oracle.perfect import PerfectOracle
from repro.query.parser import parse_query
from repro.shard import KeySpec, PartitionSpec, ShardedQOCO

schema = Schema([RelationSchema("m", ("k", "x"))])
db = Database(schema, [Fact("m", (k, f"x{k}")) for k in range(4)])
driver = ShardedQOCO(
    db, PerfectOracle(db.copy()), spec=PartitionSpec((KeySpec("m", 0),)),
    shards=2, mode="process",
)
driver.clean(parse_query("q(k, x) :- m(k, x)."))
"""

    def test_stdin_hosted_parent_fails_fast(self):
        # spawn re-runs __main__ in every worker; a stdin script has no
        # file to re-run, so workers would crash pre-payload and the
        # parent would deadlock in Process.start().  The driver must
        # refuse up front instead (and well inside this test's timeout).
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-"],
            input=self.STDIN_SCRIPT,
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert proc.returncode != 0
        assert "ShardingError" in proc.stderr
        assert "re-importable __main__" in proc.stderr

    def test_file_hosted_parent_passes_the_check(self):
        from repro.shard.driver import _check_spawn_safe_main

        # pytest's __main__ has a real file (or a module spec): no error
        _check_spawn_safe_main()


class TestSessionQueryElision:
    def test_session_query_wires_as_marker(self):
        query = parse_query(QUERIES[0])
        obj = wire.question_to_obj(
            "verify_answer", session_query=query, query=query, answer=("a",)
        )
        assert obj["query"] == wire.SESSION_QUERY
        decoded = wire.question_from_obj(_spawn_echo(obj), session_query=query)
        assert decoded["query"] is query

    def test_other_queries_wire_whole(self):
        session = parse_query(QUERIES[0])
        subquery = parse_query(QUERIES[1])
        obj = wire.question_to_obj(
            "verify_candidate", session_query=session, query=subquery, partial={}
        )
        assert obj["query"] != wire.SESSION_QUERY
        decoded = wire.question_from_obj(obj, session_query=session)
        assert decoded["query"] == subquery

    def test_marker_without_session_query_is_rejected(self):
        query = parse_query(QUERIES[0])
        obj = wire.question_to_obj(
            "verify_answer", session_query=query, query=query, answer=("a",)
        )
        with pytest.raises(CodecError, match="session query"):
            wire.question_from_obj(obj)
