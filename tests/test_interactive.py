"""Tests for the interactive (human) oracle, driven by scripted input."""


from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.interactive import InteractiveOracle
from repro.query.ast import Var
from repro.workloads import EX1


class Script:
    """Feeds scripted replies to the oracle and records prompts/output."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.prompts = []
        self.shown = []

    def prompt(self, text):
        self.prompts.append(text)
        if not self.replies:
            raise AssertionError(f"unexpected prompt: {text}")
        return self.replies.pop(0)

    def show(self, text):
        self.shown.append(text)

    def oracle(self):
        return InteractiveOracle(prompt=self.prompt, show=self.show)


class TestClosedQuestions:
    def test_verify_fact_yes(self):
        script = Script(["y"])
        assert script.oracle().verify_fact(fact("teams", "GER", "EU")) is True
        assert "teams(GER, EU)" in script.prompts[0]

    def test_verify_fact_no(self):
        script = Script(["n"])
        assert script.oracle().verify_fact(fact("teams", "BRA", "EU")) is False

    def test_bad_reply_reprompts(self):
        script = Script(["maybe", "yes"])
        assert script.oracle().verify_fact(fact("teams", "GER", "EU")) is True
        assert len(script.prompts) == 2

    def test_verify_answer(self):
        script = Script(["n"])
        assert script.oracle().verify_answer(EX1, ("ESP",)) is False
        assert "ESP" in script.prompts[0]

    def test_verify_candidate_shows_body(self):
        script = Script(["y"])
        assert script.oracle().verify_candidate(EX1, {Var("x"): "GER"}) is True
        assert any("GER" in line for line in script.shown)


class TestOpenQuestions:
    def test_complete_assignment(self):
        replies = []
        unbound = sorted(EX1.variables() - {Var("x")}, key=lambda v: v.name)
        for variable in unbound:
            replies.append(f"val_{variable.name}")
        script = Script(replies)
        result = script.oracle().complete_assignment(EX1, {Var("x"): "ITA"})
        assert result is not None
        assert result[Var("x")] == "ITA"
        assert result[unbound[0]] == f"val_{unbound[0].name}"

    def test_complete_assignment_empty_means_unsatisfiable(self):
        script = Script([""])
        assert script.oracle().complete_assignment(EX1, {Var("x"): "ESP"}) is None

    def test_values_coerced(self):
        replies = ["1992"] + [""]  # first var numeric, then bail out
        script = Script(replies)
        result = script.oracle().complete_assignment(EX1, {Var("x"): "ITA"})
        assert result is None  # bailed out, but the prompt sequence ran

    def test_complete_result(self):
        script = Script(["ITA"])
        assert script.oracle().complete_result(EX1, [("GER",)]) == ("ITA",)

    def test_complete_result_empty_means_done(self):
        script = Script([""])
        assert script.oracle().complete_result(EX1, [("GER",)]) is None

    def test_complete_result_arity_mismatch_ignored(self):
        script = Script(["ITA, extra"])
        assert script.oracle().complete_result(EX1, [("GER",)]) is None

    def test_multi_column_answer(self):
        from repro.workloads import Q2

        script = Script(["GER, NED"])
        assert script.oracle().complete_result(Q2, []) == ("GER", "NED")


class TestEndToEnd:
    def test_full_cleaning_session_with_scripted_human(self, fig1_dirty, fig1_gt):
        """A human (scripted) plays the oracle for the Figure 1 cleanup."""
        from repro.oracle.perfect import PerfectOracle
        from repro.query.evaluator import evaluate

        # Let the perfect oracle decide what the "human" would answer, but
        # route everything through the interactive surface.
        truth = PerfectOracle(fig1_gt)

        class HumanSimulator(Script):
            def prompt(self, text):
                self.prompts.append(text)
                return self._answer(text)

            def _answer(self, text):
                # crude but effective routing based on the prompt text
                if text.startswith("Is ") and "answer of" in text:
                    inner = text.split("(", 1)[1].split(")")[0]
                    answer = tuple(v.strip() for v in inner.split(","))
                    return "y" if truth.verify_answer(EX1, answer) else "n"
                if text.startswith("Is "):
                    body = text[3:].split(" true?")[0]
                    relation, args = body.split("(", 1)
                    values = tuple(
                        part.strip() for part in args.rstrip(")?").rstrip(")").split(",")
                    )
                    return "y" if truth.verify_fact(fact(relation, *values)) else "n"
                if text.startswith("Can this"):
                    return "y" if self.pending_candidate else "n"
                if text.startswith("Name a missing"):
                    missing = truth.complete_result(EX1, self.current_answers)
                    return "" if missing is None else ", ".join(missing)
                raise AssertionError(f"unhandled prompt {text!r}")

        # The full interactive loop needs candidate context; drive only the
        # deletion phase here (the simplest human task).
        human = HumanSimulator([])
        oracle = AccountingOracle(
            InteractiveOracle(prompt=human.prompt, show=human.show)
        )
        from repro.core.deletion import QOCODeletion, crowd_remove_wrong_answer
        import random

        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
