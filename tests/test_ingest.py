"""Dirty-CSV ingestion: sniffing, seeded noise, and the repair round trip.

The load-bearing properties:

* **determinism** — the same table through the same seeded pipeline is
  byte-identical CSV, twice or across processes;
* **round trip** — a clean table satisfying its generating FDs, pushed
  through *any* noise model and repaired against the clean load with a
  perfect oracle, ends violation-free.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.constraints import find_violations, repair, satisfies
from repro.ingest import (
    DuplicateRows,
    IngestError,
    MixedFormats,
    NoisePipeline,
    Outliers,
    TypePollution,
    load_csv,
    load_table,
    make_noisy_csv,
    read_table,
    sniff_column,
    sniff_csv,
    standard_noise,
    table_to_csv_bytes,
    write_csv,
)
from repro.ingest.sniffer import cell_kind, coerce_cell, is_null
from repro.oracle.perfect import PerfectOracle

HEADER = ["day", "team", "score"]


def clean_rows(n: int) -> list[list[str]]:
    """n rows with unique keys — every FD with lhs=day holds trivially."""
    return [
        [f"19{70 + i % 30:02d}-06-{10 + i % 20:02d}", f"team{i}", str(1000 + i)]
        for i in range(n)
    ]


class TestSniffer:
    def test_cell_kinds(self):
        assert cell_kind("42") == "int"
        assert cell_kind("-3.5") == "float"
        assert cell_kind("1e10") == "float"
        assert cell_kind("1998-07-12") == "date"
        assert cell_kind("12/07/1998") == "date"
        assert cell_kind("FRA") == "text"

    def test_null_tokens(self):
        for token in ("", "N/A", "null", "-", "  ?  "):
            assert is_null(token)
        assert not is_null("0")

    def test_majority_vote_survives_pollution(self):
        cells = ["1", "2", "3", "4", "5", "6", "7", "N/A", "oops"]
        profile = sniff_column("x", cells)
        assert profile.kind == "int"
        assert profile.nulls == 1

    def test_ints_vote_float_too(self):
        profile = sniff_column("x", ["3", "3.5", "4", "4.5"])
        assert profile.kind == "float"

    def test_all_null_column_is_text(self):
        assert sniff_column("x", ["", "N/A"]).kind == "text"

    def test_coerce_cell_matches_directory_loader(self):
        assert coerce_cell("42") == 42
        assert coerce_cell(" 42 ") == 42  # padded cells coerce the same
        assert coerce_cell("3.5") == 3.5
        assert coerce_cell("FRA") == "FRA"

    def test_sniff_csv_profiles(self, tmp_path):
        write_csv(tmp_path / "games.csv", HEADER, clean_rows(10))
        profiles = sniff_csv(tmp_path / "games.csv")
        assert [p.kind for p in profiles] == ["date", "text", "int"]


class TestLoader:
    def test_load_csv_sniffs_schema_and_types(self, tmp_path):
        write_csv(tmp_path / "games.csv", HEADER, clean_rows(5))
        db = load_csv(tmp_path / "games.csv")
        assert db.schema.names == ("games",)
        rel = db.schema.relation("games")
        assert rel.attributes == tuple(HEADER)
        assert rel.domains == ("games.day:date", "games.team:text", "games.score:int")
        assert len(db) == 5
        assert any(f.values[2] == 1000 for f in db.facts("games"))  # coerced int

    def test_relation_defaults_to_stem(self, tmp_path):
        write_csv(tmp_path / "matches.csv", HEADER, clean_rows(3))
        assert load_csv(tmp_path / "matches.csv").schema.names == ("matches",)

    def test_short_rows_pad_long_rows_raise(self, tmp_path):
        (tmp_path / "t.csv").write_text("a,b\n1\n", encoding="utf-8")
        header, rows = read_table(tmp_path / "t.csv")
        assert rows == [["1", ""]]
        (tmp_path / "bad.csv").write_text("a,b\n1,2,3\n", encoding="utf-8")
        with pytest.raises(IngestError):
            read_table(tmp_path / "bad.csv")
        (tmp_path / "empty.csv").write_text("", encoding="utf-8")
        with pytest.raises(IngestError):
            read_table(tmp_path / "empty.csv")

    def test_duplicate_rows_collapse_under_set_semantics(self, tmp_path):
        rows = clean_rows(4)
        write_csv(tmp_path / "t.csv", HEADER, rows + [rows[0]])
        assert len(load_csv(tmp_path / "t.csv")) == 4


class TestNoiseDeterminism:
    def test_same_seed_is_byte_identical(self, tmp_path):
        rows = clean_rows(40)
        noise = standard_noise(seed=11, fd_columns=(1, 2))
        assert table_to_csv_bytes(HEADER, noise.apply(rows)) == table_to_csv_bytes(
            HEADER, noise.apply(rows)
        )

    def test_make_noisy_csv_is_reproducible(self, tmp_path):
        write_csv(tmp_path / "clean.csv", HEADER, clean_rows(40))
        noise = standard_noise(seed=3, fd_columns=(1,))
        make_noisy_csv(tmp_path / "clean.csv", tmp_path / "a.csv", noise)
        make_noisy_csv(tmp_path / "clean.csv", tmp_path / "b.csv", noise)
        a = (tmp_path / "a.csv").read_bytes()
        assert a == (tmp_path / "b.csv").read_bytes()
        make_noisy_csv(
            tmp_path / "clean.csv",
            tmp_path / "c.csv",
            standard_noise(seed=4, fd_columns=(1,)),
        )
        assert a != (tmp_path / "c.csv").read_bytes()

    def test_models_do_not_mutate_input(self):
        rows = clean_rows(20)
        snapshot = [list(r) for r in rows]
        NoisePipeline(
            (TypePollution(rate=0.5), DuplicateRows(rate=0.5)), seed=1
        ).apply(rows)
        assert rows == snapshot

    def test_each_model_actually_dirties(self):
        rows = clean_rows(50)
        for model in (
            TypePollution(rate=0.2),
            MixedFormats(rate=0.5),
            Outliers(rate=0.2),
            DuplicateRows(rate=0.1, perturb_columns=(1,)),
        ):
            dirty = NoisePipeline((model,), seed=5).apply(rows)
            assert dirty != rows, model.name


FDS = ["t: day -> team, score"]

MODEL_BUILDERS = [
    lambda: TypePollution(rate=0.15),
    lambda: MixedFormats(rate=0.3),
    lambda: Outliers(rate=0.15),
    lambda: DuplicateRows(rate=0.2, perturb_columns=(1, 2)),
]


class TestRepairRoundTrip:
    """clean → noise → load → repair(PerfectOracle over clean) → consistent."""

    @pytest.mark.parametrize("build", MODEL_BUILDERS)
    def test_each_model_round_trips(self, build):
        rows = clean_rows(30)
        truth, _ = load_table("t", HEADER, rows)
        assert satisfies(truth, FDS)
        dirty_rows = NoisePipeline((build(),), seed=13).apply(rows)
        dirty, _ = load_table("t", HEADER, dirty_rows)
        report = repair(dirty, FDS, PerfectOracle(truth))
        assert report.consistent
        assert find_violations(dirty, FDS) == []

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=2**31),
        picks=st.lists(
            st.integers(min_value=0, max_value=len(MODEL_BUILDERS) - 1),
            min_size=1,
            max_size=4,
        ),
    )
    def test_any_noise_stack_round_trips(self, n, seed, picks):
        rows = clean_rows(n)
        truth, _ = load_table("t", HEADER, rows)
        pipeline = NoisePipeline(
            tuple(MODEL_BUILDERS[i]() for i in picks), seed=seed
        )
        dirty_rows = pipeline.apply(rows)
        # determinism rides along: the pipeline re-applies identically
        assert table_to_csv_bytes(HEADER, dirty_rows) == table_to_csv_bytes(
            HEADER, pipeline.apply(rows)
        )
        dirty, _ = load_table("t", HEADER, dirty_rows)
        report = repair(dirty, FDS, PerfectOracle(truth))
        assert report.consistent
        assert satisfies(dirty, FDS)
