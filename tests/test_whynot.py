"""Unit tests for the WhyNot?-style picky-join detector."""

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.provenance.whynot import find_picky_join
from repro.query.parser import parse_query
from repro.query.subquery import embed_answer, subquery
from repro.query.evaluator import Evaluator
from repro.workloads import EX2


def small_db():
    schema = Schema.from_dict({"r1": ["a", "b"], "r2": ["b", "c"], "r3": ["c", "d"]})
    return Database(
        schema,
        [
            fact("r1", 1, 2),
            fact("r2", 2, 3),
            # r3 lacks any fact joining with c=3 -> the join r12 ⋈ r3 is picky
            fact("r3", 9, 9),
        ],
    )


CHAIN = parse_query("q(a, d) :- r1(a, b), r2(b, c), r3(c, d).")


class TestPickyJoin:
    def test_blocking_atom_identified(self):
        picky = find_picky_join(CHAIN, small_db())
        assert picky.blocking == 2
        assert set(picky.left) == {0, 1}
        assert set(picky.right) == {2}

    def test_left_side_satisfiable(self):
        db = small_db()
        picky = find_picky_join(CHAIN, db)
        left = subquery(CHAIN, list(picky.left))
        assert next(Evaluator(left, db).assignments(), None) is not None

    def test_satisfiable_query_has_no_picky_join(self):
        db = small_db()
        db.insert(fact("r3", 3, 4))
        picky = find_picky_join(CHAIN, db)
        assert picky.blocking is None
        assert picky.right == ()

    def test_single_unsatisfiable_atom(self):
        schema = Schema.from_dict({"r": ["a"]})
        db = Database(schema)
        query = parse_query("q(a) :- r(a).")
        picky = find_picky_join(query, db)
        assert picky.blocking == 0

    def test_single_satisfiable_atom(self):
        schema = Schema.from_dict({"r": ["a"]})
        db = Database(schema, [fact("r", 1)])
        query = parse_query("q(a) :- r(a).")
        picky = find_picky_join(query, db)
        assert picky.blocking is None

    def test_all_atoms_empty(self):
        db = Database(Schema.from_dict({"r1": ["a", "b"], "r2": ["b", "c"], "r3": ["c", "d"]}))
        picky = find_picky_join(CHAIN, db)
        assert picky.blocking == 0
        assert picky.left == (0,)


class TestOnFigure1:
    def test_missing_pirlo_split(self, fig1_dirty):
        # Q|Pirlo is unsatisfiable in D because Teams(ITA, EU) is missing.
        embedded = embed_answer(EX2, ("Andrea Pirlo",))
        picky = find_picky_join(embedded, fig1_dirty)
        assert picky.blocking is not None
        # The blocking atom is the teams atom (index of teams in EX2 body).
        blocked_atom = embedded.atoms[picky.blocking]
        assert blocked_atom.relation == "teams"

    def test_partition_is_exact(self, fig1_dirty):
        embedded = embed_answer(EX2, ("Andrea Pirlo",))
        picky = find_picky_join(embedded, fig1_dirty)
        assert sorted(picky.left + picky.right) == list(range(len(embedded.atoms)))
