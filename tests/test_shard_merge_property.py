"""Property test (hypothesis): deterministic merge of shard edit logs.

For randomized dirty instances of a partitioned schema and a
partition-respecting query, a 2-shard inline `ShardedQOCO` clean must

* produce per-shard edit logs that survive a JSON codec round-trip, and
* replay — in **either** shard order — onto a fresh copy of the dirty
  database to the exact ``state_digest`` of a single-process QOCO clean
  (which in turn reaches the ground truth, since witnesses are unique).

The schema keeps witnesses unique (exactly one ``lab`` tuple per
``x``-value, every ``m`` tuple carrying a distinct ``x``), so the repair
is canonical and digest equality is the full correctness statement, not
a lucky tie-break.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qoco import QOCO
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.oracle.perfect import PerfectOracle
from repro.query.parser import parse_query
from repro.shard import KeySpec, PartitionSpec, ShardedQOCO

SCHEMA = Schema(
    [
        RelationSchema("m", ("k", "x")),
        RelationSchema("lab", ("x", "y")),
    ]
)
SPEC = PartitionSpec((KeySpec("m", 0),))
QP = parse_query("qp(k, x) :- m(k, x), lab(x, y).")

KEYS = list(range(12))


@st.composite
def instances(draw):
    """A ground truth plus a dirty version with wrong/missing m-tuples."""
    true_keys = draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=8, unique=True)
    )
    # one lab tuple per x-value → unique witnesses → canonical repairs
    lab = [(f"x{k}", "y") for k in KEYS]
    truth = Database(
        SCHEMA,
        [Fact("m", (k, f"x{k}")) for k in true_keys]
        + [Fact("lab", tuple(row)) for row in lab],
    )
    missing = draw(st.lists(st.sampled_from(true_keys), unique=True, max_size=4))
    wrong_pool = [k for k in KEYS if k not in true_keys]
    wrong = draw(st.lists(st.sampled_from(wrong_pool or KEYS), unique=True, max_size=4))
    dirty_keys = [k for k in true_keys if k not in missing]
    dirty = Database(
        SCHEMA,
        [Fact("m", (k, f"x{k}")) for k in dirty_keys]
        + [Fact("m", (k, f"x{k}")) for k in wrong if k in wrong_pool]
        + [Fact("lab", tuple(row)) for row in lab],
    )
    return truth, dirty


@given(instances())
@settings(max_examples=40, deadline=None)
def test_either_order_replay_matches_unsharded_clean(pair):
    truth, dirty = pair

    # single-process reference
    reference = dirty.copy()
    fork = reference.fork()
    QOCO(fork, PerfectOracle(truth)).clean(QP)
    reference.apply_exported(fork.export_edit_log())

    # 2-shard inline clean
    merged = dirty.copy()
    report = ShardedQOCO(
        merged, PerfectOracle(truth), spec=SPEC, shards=2, mode="inline",
        verify_merge=True,
    ).clean(QP)
    assert merged.state_digest() == reference.state_digest()
    assert merged.state_digest() == truth.state_digest()

    # the exported logs replay in either shard order, through a JSON
    # round-trip, to the same digest
    logs = {
        shard: json.loads(json.dumps(edits))
        for shard, edits in report.edit_logs.items()
    }
    for order in (sorted(logs), sorted(logs, reverse=True)):
        replayed = dirty.copy()
        for shard in order:
            replayed.apply_exported(logs[shard])
        assert replayed.state_digest() == merged.state_digest()


@given(instances())
@settings(max_examples=25, deadline=None)
def test_shard_edit_logs_touch_disjoint_facts(pair):
    truth, dirty = pair
    merged = dirty.copy()
    report = ShardedQOCO(
        merged, PerfectOracle(truth), spec=SPEC, shards=2, mode="inline"
    ).clean(QP)
    touched: list[set[str]] = []
    for shard in sorted(report.edit_logs):
        touched.append(
            {json.dumps(e["fact"], sort_keys=True) for e in report.edit_logs[shard]}
        )
    for i, a in enumerate(touched):
        for b in touched[i + 1 :]:
            assert not (a & b)
