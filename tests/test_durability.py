"""Durability layer: codec round-trips, WAL framing, crash recovery.

The ISSUE 5 acceptance gate lives here: for every byte-level truncation
point of a recorded WAL, ``recover()`` must yield a consistent prefix
state, and full replay must reproduce the live server's final database
and ledgers bit-identically.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.api
from repro.core.qoco import QOCOConfig
from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
from repro.db.database import Database
from repro.db.edits import Edit, EditKind
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact, fact
from repro.durability import (
    DurabilityError,
    DurabilityStore,
    WalWriter,
    codec,
    read_wal,
    recover,
    recover_manager,
    run_crash_matrix,
)
from repro.durability.wal import decode_records, encode_record
from repro.oracle.base import Oracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Atom, Inequality, Query, Var
from repro.query.parser import parse_query
from repro.server import SessionManager
from repro.workloads import EX1

from qoco_strategies import databases, facts, queries

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
constants = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(min_size=0, max_size=12),
)

edit_sequences = st.lists(
    st.tuples(st.sampled_from([EditKind.INSERT, EditKind.DELETE]), facts()),
    max_size=25,
)


def wild_fact(values) -> Fact:
    return Fact("w", tuple(values))


WILD_SCHEMA = Schema([RelationSchema("w", ("a", "b"))])


# ----------------------------------------------------------------------
# codec round-trips
# ----------------------------------------------------------------------
class TestCodec:
    @given(st.lists(constants, min_size=2, max_size=2))
    def test_fact_round_trip_survives_negatives_and_floats(self, values):
        original = wild_fact(values)
        decoded = codec.fact_from_obj(
            json.loads(json.dumps(codec.fact_to_obj(original)))
        )
        assert decoded == original

    @given(queries(negation=True))
    def test_query_round_trip_with_negation_and_inequalities(self, query):
        decoded = codec.query_from_obj(
            json.loads(json.dumps(codec.query_to_obj(query)))
        )
        assert decoded == query

    def test_inequality_bearing_query_round_trip_explicit(self):
        query = parse_query(
            'q(x, y) :- r(x, y), s(y), x != y, x != "a".'
        )
        assert codec.query_from_obj(codec.query_to_obj(query)) == query

    def test_board_keys_round_trip_all_kinds(self):
        query = Query(
            head=(Var("x"),),
            atoms=(Atom("r", (Var("x"), Var("y"))),),
            inequalities=(Inequality(Var("x"), Var("y")),),
            negated_atoms=(Atom("s", (Var("y"),)),),
        )
        keys = [
            ("verify_fact", fact("r", "a", -3)),
            ("verify_answer", query, ("a",)),
            ("verify_candidate", query, frozenset({(Var("x"), "a"), (Var("y"), 2)})),
        ]
        for key in keys:
            encoded = json.loads(json.dumps(codec.board_key_to_obj(key)))
            assert codec.board_key_from_obj(encoded) == key

    def test_var_constant_never_confused(self):
        # a constant string that *looks* like a variable stays a constant
        atom_const = Atom("s", ("x",))
        atom_var = Atom("s", (Var("x"),))
        assert codec._atom_from_obj(codec._atom_to_obj(atom_const)) == atom_const
        assert codec._atom_from_obj(codec._atom_to_obj(atom_var)) == atom_var
        assert codec._atom_to_obj(atom_const) != codec._atom_to_obj(atom_var)

    @given(databases())
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_database_round_trip_and_digest_stability(self, database):
        obj = json.loads(json.dumps(codec.database_to_obj(database)))
        rebuilt = codec.database_from_obj(obj)
        assert rebuilt == database
        assert rebuilt.state_digest() == database.state_digest()


class TestForkEditLogRoundTrip:
    @given(databases(), edit_sequences)
    @settings(
        max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
    )
    def test_exported_log_replays_to_fork_state(self, database, edits):
        fork = database.fork()
        for kind, f in edits:
            Edit(kind, f).apply(fork)
        exported = json.loads(json.dumps(fork.export_edit_log()))
        replica = database.copy()
        replica.apply_exported(exported)
        assert replica == fork
        assert replica.state_digest() == codec.database_digest(fork)

    def test_negative_and_float_values_round_trip(self):
        base = Database(WILD_SCHEMA, [wild_fact((-1, -2.5))])
        fork = base.fork()
        fork.delete(wild_fact((-1, -2.5)))
        fork.insert(wild_fact((-10**12, 0.1)))
        fork.insert(wild_fact(("x != y", -0.0)))
        replica = base.copy()
        replica.apply_exported(json.loads(json.dumps(fork.export_edit_log())))
        assert replica == fork


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
class TestWalFraming:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        records = [{"seq": i, "type": "commit", "edits": [], "n": -i} for i in range(5)]
        with WalWriter(path, sync="always") as writer:
            for record in records:
                writer.append(record)
        result = read_wal(path)
        assert result.records == records
        assert result.torn_bytes == 0

    def test_every_truncation_yields_a_valid_prefix(self, tmp_path):
        frames = [encode_record({"seq": i, "payload": "x" * i}) for i in range(4)]
        data = b"".join(frames)
        boundaries = [0]
        for frame in frames:
            boundaries.append(boundaries[-1] + len(frame))
        for cut in range(len(data) + 1):
            result = decode_records(data[:cut])
            expected = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(result.records) == expected
            assert result.valid_bytes == boundaries[expected]
            assert result.torn_bytes == cut - boundaries[expected]

    def test_corrupt_byte_discards_the_tail_not_the_prefix(self, tmp_path):
        frames = [encode_record({"seq": i}) for i in range(3)]
        data = bytearray(b"".join(frames))
        flip = len(frames[0]) + len(frames[1]) // 2  # inside record #1
        data[flip] ^= 0xFF
        result = decode_records(bytes(data))
        assert [r["seq"] for r in result.records] == [0]

    def test_unknown_sync_policy_is_rejected(self, tmp_path):
        with pytest.raises(Exception, match="sync policy"):
            WalWriter(tmp_path / "wal.log", sync="sometimes")


# ----------------------------------------------------------------------
# the durable server: commit, recover, resume
# ----------------------------------------------------------------------
def durable_run(tmp_path, n_sessions=2, **manager_kwargs):
    ground_truth = figure1_ground_truth()
    dirty = figure1_dirty()
    manager = SessionManager(
        dirty,
        config=QOCOConfig(seed=0),
        durable_path=tmp_path / "state",
        **manager_kwargs,
    )
    for tenant in range(n_sessions):
        manager.open_session(EX1, PerfectOracle(ground_truth), tenant=f"t{tenant}")
    report = manager.run_all()
    return manager, dirty, report


class TestDurableServer:
    def test_commit_is_on_disk_before_close(self, tmp_path):
        manager, dirty, report = durable_run(tmp_path)
        assert report.committed == 2
        log = read_wal(tmp_path / "state" / "wal.log")
        commits = [r for r in log.records if r["type"] == "commit"]
        assert len(commits) == 2  # ack-after-fsync: durable pre-close
        assert all(r["seq"] > 0 for r in log.records)
        manager.close()

    def test_recover_rebuilds_database_ledger_board(self, tmp_path):
        manager, dirty, _ = durable_run(tmp_path)
        state = recover(tmp_path / "state")
        assert state.digest == dirty.state_digest()
        assert state.ledger == manager.ledger.snapshot()
        assert len(state.board) == len(manager.board.entries())
        assert state.torn_bytes == 0
        manager.close()

    def test_attaching_to_dirty_directory_is_refused(self, tmp_path):
        manager, _, _ = durable_run(tmp_path)
        manager.close()
        with pytest.raises(DurabilityError, match="recover"):
            SessionManager(figure1_dirty(), durable_path=tmp_path / "state")

    def test_recovered_manager_resumes_the_same_log(self, tmp_path):
        manager, dirty, _ = durable_run(tmp_path)
        manager.close()
        resumed = recover_manager(tmp_path / "state")
        assert resumed.database == dirty
        resumed.open_session(
            EX1, PerfectOracle(figure1_ground_truth()), tenant="late"
        )
        resumed.run_all()
        final = recover(tmp_path / "state")
        assert final.digest == resumed.database.state_digest()
        assert final.ledger == resumed.ledger.snapshot()
        resumed.close()

    def test_checkpoint_truncates_and_preserves_state(self, tmp_path):
        manager, dirty, _ = durable_run(tmp_path)
        wal_path = tmp_path / "state" / "wal.log"
        assert wal_path.stat().st_size > 0
        manager.checkpoint()
        assert wal_path.stat().st_size == 0
        state = recover(tmp_path / "state")
        assert state.records_replayed == 0
        assert state.digest == dirty.state_digest()
        assert state.ledger == manager.ledger.snapshot()
        manager.close()

    def test_stale_records_after_checkpoint_are_skipped(self, tmp_path):
        # simulate a crash between checkpoint-rename and WAL-truncate:
        # the old records (seq <= checkpoint.seq) reappear in the log
        manager, dirty, _ = durable_run(tmp_path)
        wal_path = tmp_path / "state" / "wal.log"
        stale = wal_path.read_bytes()
        manager.checkpoint()
        wal_path.write_bytes(stale)
        state = recover(tmp_path / "state")
        assert state.records_replayed == 0  # subsumed by the snapshot
        assert state.digest == dirty.state_digest()
        manager.close()

    def test_checkpoint_every_takes_snapshots_inline(self, tmp_path):
        manager, dirty, _ = durable_run(tmp_path, checkpoint_every=1)
        # every commit checkpointed: nothing left to replay
        state = recover(tmp_path / "state")
        assert state.records_replayed == 0
        assert state.digest == dirty.state_digest()
        manager.close()

    def test_background_checkpointer_snapshots_grown_log(self, tmp_path):
        import time

        manager, dirty, _ = durable_run(tmp_path, checkpoint_interval=0.05)
        wal_path = tmp_path / "state" / "wal.log"
        deadline = time.time() + 5.0
        while wal_path.stat().st_size > 0 and time.time() < deadline:
            time.sleep(0.02)
        assert wal_path.stat().st_size == 0, "checkpointer never ran"
        state = recover(tmp_path / "state")
        assert state.digest == dirty.state_digest()
        manager.close()

    def test_failed_session_charge_is_durable(self, tmp_path):
        class ExplodingOracle(Oracle):
            def __init__(self, inner, fuse):
                self.inner, self.fuse = inner, fuse

            def _tick(self):
                self.fuse -= 1
                if self.fuse <= 0:
                    raise RuntimeError("crowd walked out")

            def verify_fact(self, f):
                self._tick()
                return self.inner.verify_fact(f)

            def verify_answer(self, q, a):
                self._tick()
                return self.inner.verify_answer(q, a)

            def verify_candidate(self, q, p):
                self._tick()
                return self.inner.verify_candidate(q, p)

            def complete_assignment(self, q, p):
                self._tick()
                return self.inner.complete_assignment(q, p)

            def complete_result(self, q, k):
                self._tick()
                return self.inner.complete_result(q, k)

        ground_truth = figure1_ground_truth()
        manager = SessionManager(
            figure1_dirty(),
            config=QOCOConfig(seed=0),
            durable_path=tmp_path / "state",
        )
        manager.open_session(
            EX1, ExplodingOracle(PerfectOracle(ground_truth), fuse=3), tenant="doomed"
        )
        report = manager.run_all()
        assert report.failed == 1
        spent = manager.ledger.spent("doomed")
        assert spent > 0
        state = recover(tmp_path / "state")
        assert state.ledger.get("doomed") == spent
        manager.close()

    def test_recovered_board_spares_the_crowd(self, tmp_path):
        answered = {"n": 0}

        class CountingOracle(PerfectOracle):
            def verify_fact(self, f):
                answered["n"] += 1
                return super().verify_fact(f)

            def verify_answer(self, q, a):
                answered["n"] += 1
                return super().verify_answer(q, a)

            def verify_candidate(self, q, p):
                answered["n"] += 1
                return super().verify_candidate(q, p)

        ground_truth = figure1_ground_truth()
        manager, dirty, _ = durable_run(tmp_path, n_sessions=1)
        manager.close()

        # baseline: the same re-run against the cleaned state with a
        # *fresh* board pays for its closed questions again
        fresh = SessionManager(dirty.copy(), config=QOCOConfig(seed=0))
        fresh.open_session(EX1, CountingOracle(ground_truth), tenant="again")
        fresh.run_all()
        fresh_cost = answered["n"]
        assert fresh_cost > 0

        answered["n"] = 0
        resumed = recover_manager(tmp_path / "state")
        assert len(resumed.board.entries()) > 0  # verdicts survived the restart
        resumed.open_session(EX1, CountingOracle(ground_truth), tenant="again")
        resumed.run_all()
        # the recovered board already holds the verdicts the first tenant
        # paid for, so the re-run buys strictly fewer closed answers
        assert answered["n"] < fresh_cost
        resumed.close()

    def test_api_facade_round_trip(self, tmp_path):
        ground_truth = figure1_ground_truth()
        dirty = figure1_dirty()
        manager = repro.api.serve(
            dirty, config=QOCOConfig(seed=0), durable_path=tmp_path / "state"
        )
        repro.api.open_session(manager, EX1, PerfectOracle(ground_truth))
        manager.run_all()
        manager.close()
        state = repro.api.recover(tmp_path / "state")
        assert state.digest == dirty.state_digest()
        resumed = repro.api.recover_server(tmp_path / "state")
        assert resumed.database == dirty
        resumed.close()


# ----------------------------------------------------------------------
# the crash matrix (the ISSUE 5 acceptance gate)
# ----------------------------------------------------------------------
class TestCrashMatrix:
    def test_server_run_survives_every_byte_boundary(self, tmp_path):
        manager, dirty, report = durable_run(tmp_path, n_sessions=3)
        assert report.committed == 3
        matrix = run_crash_matrix(
            tmp_path / "state",
            live_database=dirty,
            live_ledger=manager.ledger.snapshot(),
            stride=1,
        )
        assert matrix.wal_bytes > 0
        assert matrix.ok, matrix.failures[:5]
        # sanity: the matrix spans tears inside records, not only edges
        partial = [
            p
            for p in matrix.points
            if 0 < p.offset < matrix.wal_bytes and p.recovered_records >= 0
        ]
        assert partial
        manager.close()

    @given(databases(max_size=10), st.lists(edit_sequences, min_size=1, max_size=3))
    @settings(
        max_examples=15,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_synthetic_commit_logs_recover_at_every_boundary(
        self, tmp_path_factory, database, sessions
    ):
        # property form: arbitrary edit logs through the real store, the
        # full byte-matrix against the independently-applied live state
        tmp_path = tmp_path_factory.mktemp("crash")
        store = DurabilityStore(tmp_path, sync="batch")
        live = codec.database_from_obj(codec.database_to_obj(database))
        store.write_checkpoint(
            {
                "database": codec.database_to_obj(database),
                "digest": codec.database_digest(database),
                "ledger": {},
                "board": [],
            }
        )
        ledger: dict[str, int] = {}
        for index, edits in enumerate(sessions):
            fork = live.fork()
            for kind, f in edits:
                Edit(kind, f).apply(fork)
            record = {
                "type": "commit",
                "session": index,
                "tenant": f"t{index % 2}",
                "cost": len(edits),
                "edits": fork.export_edit_log(),
                "board": [],
            }
            store.append(record)
            live.apply(fork.pending_edits)
            if edits:
                tenant = f"t{index % 2}"
                ledger[tenant] = ledger.get(tenant, 0) + len(edits)
        store.close()
        matrix = run_crash_matrix(
            tmp_path, live_database=live, live_ledger=ledger, stride=1
        )
        assert matrix.ok, matrix.failures[:5]
