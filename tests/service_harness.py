"""Shared helpers for the service test files: run a
:class:`~repro.service.app.CrowdService` on a background event-loop
thread and talk to it from synchronous test code."""

from __future__ import annotations

import asyncio
import threading

from repro.service.app import CrowdService


class ServiceHarness:
    """One service on its own loop thread, bound to an ephemeral port."""

    def __init__(self, manager=None, **kwargs) -> None:
        self.service = CrowdService(manager, **kwargs)
        self.host: str = ""
        self.port: int = 0
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="qoco-service-harness", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced by start()/stop()
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.service.start("127.0.0.1", 0)
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()

    def start(self) -> tuple[str, int]:
        self._thread.start()
        assert self._ready.wait(15), "service failed to start in time"
        if self._error is not None:
            raise self._error
        return self.host, self.port

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        if self._error is not None:
            raise self._error

    def __enter__(self) -> "ServiceHarness":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
