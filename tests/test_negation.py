"""Tests for queries with safe negation (§9 extension)."""

import random

import pytest

from repro.core.negation import (
    Option,
    add_missing_answer_with_negation,
    remove_wrong_answer_with_negation,
)
from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import QueryError, Var
from repro.query.evaluator import evaluate, naive_evaluate
from repro.query.parser import parse_query

#: Teams that reached a final but never won one ("nearly men").
NEVER_WON = parse_query(
    'q(x) :- games(d, y, x, "Final", r), not won(x).'
)
# helper relation: won(team) — teams with at least one title


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"games": ["d", "w", "l", "s", "r"], "won": ["team"]}
    )


def build(schema, games, winners):
    db = Database(schema)
    for row in games:
        db.insert(fact("games", *row))
    for team in winners:
        db.insert(fact("won", team))
    return db


@pytest.fixture
def gt(schema):
    games = [
        ("d1", "GER", "ARG", "Final", "1:0"),
        ("d2", "ESP", "NED", "Final", "1:0"),
        ("d3", "GER", "NED", "Final", "2:1"),
    ]
    return build(schema, games, winners=["GER", "ESP"])


class TestParsing:
    def test_not_keyword(self):
        q = parse_query("q(x) :- r(x), not s(x).")
        assert len(q.atoms) == 1
        assert len(q.negated_atoms) == 1
        assert q.negated_atoms[0].relation == "s"

    def test_round_trip(self):
        q = parse_query('q(x) :- r(x, y), not s(x, "c"), x != y.')
        assert parse_query(str(q)) == q

    def test_local_wildcards_allowed(self):
        # z occurs only under the negation: a NOT EXISTS wildcard.
        q = parse_query("q(x) :- r(x), not s(z).")
        assert q.negated_atoms[0].variables() == {Var("z")}

    def test_wildcard_shared_across_negations_rejected(self):
        with pytest.raises(QueryError):
            parse_query("q(x) :- r(x), not s(z), not t(z, x).")

    def test_not_must_precede_atom(self):
        with pytest.raises(Exception):
            parse_query("q(x) :- r(x), not x != y.")


class TestEvaluation:
    def test_negation_filters(self, gt):
        answers = evaluate(NEVER_WON, gt)
        assert answers == {("ARG",), ("NED",)}  # ESP and GER have titles

    def test_matches_naive(self, gt):
        assert evaluate(NEVER_WON, gt) == naive_evaluate(NEVER_WON, gt)

    def test_constant_negated_atom(self, schema):
        db = build(schema, [("d1", "A", "B", "Final", "1:0")], winners=["A"])
        q = parse_query('q(x) :- games(d, x, y, s, r), not won("ZZZ").')
        assert evaluate(q, db) == {("A",)}
        db.insert(fact("won", "ZZZ"))
        assert evaluate(q, db) == set()

    def test_empty_negated_relation(self, schema):
        db = build(schema, [("d1", "A", "B", "Final", "1:0")], winners=[])
        assert evaluate(NEVER_WON, db) == {("B",)}

    def test_validate_checks_negated_atoms(self, gt):
        q = parse_query("q(x) :- games(d, x, y, s, r), not nosuch(x).")
        with pytest.raises(Exception):
            evaluate(q, gt)

    def test_not_exists_wildcard(self, schema):
        # losers who never won *any* final, wildcard over the opponent
        db = build(
            schema,
            [
                ("d1", "GER", "ARG", "Final", "1:0"),
                ("d2", "GER", "NED", "Final", "2:1"),
            ],
            winners=[],
        )
        q = parse_query(
            'q(x) :- games(d, y, x, "Final", r), not games(e, x, z, "Final", u).'
        )
        # ARG and NED never appear as winners of any final
        assert evaluate(q, db) == {("ARG",), ("NED",)}
        db.insert(fact("games", "d3", "ARG", "BRA", "Final", "1:0"))
        assert evaluate(q, db) == {("NED",), ("BRA",)}

    def test_bound_variable_repeated_under_negation(self, schema):
        db = build(schema, [("d1", "A", "B", "Final", "1:0")], winners=[])
        # not games(e, x, x, ...) — blocks x only if x beat itself
        q = parse_query(
            'q(x) :- games(d, x, y, "Final", r), not games(e, x, x, s, u).'
        )
        assert evaluate(q, db) == {("A",)}
        db.insert(fact("games", "d9", "A", "A", "Group", "0:0"))
        assert evaluate(q, db) == set()

    def test_repeated_local_wildcard_must_be_consistent(self, schema):
        db = build(schema, [("d1", "A", "B", "Final", "1:0")], winners=[])
        # not games(e, z, z, ...) — blocks everything only if ANY team
        # ever beat itself (z repeated under the negation)
        q = parse_query(
            'q(x) :- games(d, x, y, "Final", r), not games(e, z, z, s, u).'
        )
        assert evaluate(q, db) == {("A",)}
        db.insert(fact("games", "d9", "C", "C", "Group", "0:0"))
        assert evaluate(q, db) == set()


class TestRemoveWrongAnswer:
    def test_wrong_answer_from_missing_negated_fact(self, schema, gt):
        # Dirty DB lacks won(ESP): NED is correct but ESP appears wrongly
        # as a never-winner... build: ESP lost a final too.
        games = [
            ("d1", "GER", "ARG", "Final", "1:0"),
            ("d2", "ESP", "NED", "Final", "1:0"),
            ("d3", "GER", "ESP", "Final", "2:1"),
        ]
        gt_db = build(schema, games, winners=["GER", "ESP"])
        dirty = build(schema, games, winners=["GER"])  # won(ESP) missing
        assert ("ESP",) in evaluate(NEVER_WON, dirty)
        assert ("ESP",) not in evaluate(NEVER_WON, gt_db)

        oracle = AccountingOracle(PerfectOracle(gt_db))
        edits = remove_wrong_answer_with_negation(
            NEVER_WON, dirty, ("ESP",), oracle, random.Random(0)
        )
        assert ("ESP",) not in evaluate(NEVER_WON, dirty)
        # the fix was an insertion of the true won(ESP) fact
        assert fact("won", "ESP") in dirty
        assert any(e.fact == fact("won", "ESP") for e in edits)

    def test_wrong_answer_from_false_positive_fact(self, schema):
        games_true = [("d1", "GER", "ARG", "Final", "1:0")]
        gt_db = build(schema, games_true, winners=["GER"])
        dirty = build(
            schema,
            games_true + [("d9", "GER", "BRA", "Final", "3:0")],  # fake game
            winners=["GER"],
        )
        assert ("BRA",) in evaluate(NEVER_WON, dirty)
        oracle = AccountingOracle(PerfectOracle(gt_db))
        remove_wrong_answer_with_negation(
            NEVER_WON, dirty, ("BRA",), oracle, random.Random(0)
        )
        assert ("BRA",) not in evaluate(NEVER_WON, dirty)
        assert fact("games", "d9", "GER", "BRA", "Final", "3:0") not in dirty

    def test_only_truth_preserving_edits(self, schema):
        games = [("d1", "GER", "ARG", "Final", "1:0")]
        gt_db = build(schema, games, winners=["GER", "ARG"])
        dirty = build(schema, games, winners=["GER"])
        oracle = AccountingOracle(PerfectOracle(gt_db))
        edits = remove_wrong_answer_with_negation(
            NEVER_WON, dirty, ("ARG",), oracle, random.Random(0)
        )
        for edit in edits:
            from repro.db.edits import EditKind

            if edit.kind is EditKind.INSERT:
                assert edit.fact in gt_db
            else:
                assert edit.fact not in gt_db


class TestAddMissingAnswer:
    def test_missing_because_of_false_blocker(self, schema):
        # NED never won, but the dirty DB has a false won(NED) fact that
        # blocks the negated atom.
        games = [("d1", "GER", "NED", "Final", "1:0")]
        gt_db = build(schema, games, winners=["GER"])
        dirty = build(schema, games, winners=["GER", "NED"])  # won(NED) false
        assert ("NED",) not in evaluate(NEVER_WON, dirty)

        oracle = AccountingOracle(PerfectOracle(gt_db))
        edits = add_missing_answer_with_negation(
            NEVER_WON, dirty, ("NED",), oracle, rng=random.Random(0)
        )
        assert ("NED",) in evaluate(NEVER_WON, dirty)
        assert fact("won", "NED") not in dirty

    def test_missing_because_of_missing_positive_fact(self, schema):
        games = [("d1", "GER", "NED", "Final", "1:0")]
        gt_db = build(schema, games, winners=["GER"])
        dirty = build(schema, [], winners=["GER"])  # the game is missing
        oracle = AccountingOracle(PerfectOracle(gt_db))
        add_missing_answer_with_negation(
            NEVER_WON, dirty, ("NED",), oracle, rng=random.Random(0)
        )
        assert ("NED",) in evaluate(NEVER_WON, dirty)

    def test_both_problems_at_once(self, schema):
        games = [("d1", "GER", "NED", "Final", "1:0")]
        gt_db = build(schema, games, winners=["GER"])
        dirty = build(schema, [], winners=["GER", "NED"])  # missing + blocker
        oracle = AccountingOracle(PerfectOracle(gt_db))
        add_missing_answer_with_negation(
            NEVER_WON, dirty, ("NED",), oracle, rng=random.Random(0)
        )
        assert ("NED",) in evaluate(NEVER_WON, dirty)


class TestOption:
    def test_edit_direction(self):
        f = fact("won", "X")
        assert str(Option("delete", f).edit()) == "won(X)-"
        assert str(Option("insert", f).edit()) == "won(X)+"

    def test_str(self):
        f = fact("won", "X")
        assert str(Option("delete", f)) == "won(X)-"
