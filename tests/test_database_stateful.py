"""Stateful property test: Database vs a plain-set reference model.

Random interleavings of inserts, deletes, matches and domain queries
must keep the indexed Database exactly in sync with a naive model —
this is what guarantees the evaluator's index-backed joins see the same
facts a scan would.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import Fact

SCHEMA = Schema.from_dict({"r": ["a", "b"], "s": ["a"]})
VALUES = ["x", "y", "z", 1, 2]

r_facts = st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)).map(
    lambda v: Fact("r", v)
)
s_facts = st.tuples(st.sampled_from(VALUES)).map(lambda v: Fact("s", v))
any_fact = st.one_of(r_facts, s_facts)


class DatabaseMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database(SCHEMA)
        self.model: set[Fact] = set()

    @rule(fact=any_fact)
    def insert(self, fact):
        changed = self.db.insert(fact)
        assert changed == (fact not in self.model)
        self.model.add(fact)

    @rule(fact=any_fact)
    def delete(self, fact):
        changed = self.db.delete(fact)
        assert changed == (fact in self.model)
        self.model.discard(fact)

    @rule(fact=any_fact)
    def contains(self, fact):
        assert (fact in self.db) == (fact in self.model)

    @rule(
        value=st.sampled_from(VALUES),
        position=st.integers(0, 1),
    )
    def match_r_one_bound(self, value, position):
        pattern = [None, None]
        pattern[position] = value
        got = set(self.db.match("r", pattern))
        expected = {
            f
            for f in self.model
            if f.relation == "r" and f.values[position] == value
        }
        assert got == expected

    @rule()
    def match_all(self):
        assert set(self.db.match("r", [None, None])) == {
            f for f in self.model if f.relation == "r"
        }

    @rule(position=st.integers(0, 1))
    def active_domain(self, position):
        got = self.db.active_domain("r", position)
        expected = {
            f.values[position] for f in self.model if f.relation == "r"
        }
        assert got == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.db) == len(self.model)
        assert self.db.size("r") == sum(
            1 for f in self.model if f.relation == "r"
        )

    @invariant()
    def iteration_agrees(self):
        assert set(self.db) == self.model


TestDatabaseStateful = DatabaseMachine.TestCase
TestDatabaseStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
