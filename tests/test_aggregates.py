"""Tests for COUNT aggregate views (§9 extension)."""


import pytest

from repro.aggregates.count import AggregateQOCO, CountView
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import QueryError
from repro.query.parser import parse_query

#: titles(x, d): team x won the final on date d.
TITLES = parse_query('titles(x, d) :- games(d, x, y, "Final", u).')

#: how many World Cups each team won
TITLE_COUNTS = CountView(TITLES, group_arity=1)


class TestCountView:
    def test_counts_on_figure1(self, fig1_gt):
        counts = TITLE_COUNTS.evaluate(fig1_gt)
        assert counts[("GER",)] == 2
        assert counts[("ITA",)] == 2
        assert counts[("ESP",)] == 1
        assert ("NED",) not in counts  # zero groups are absent

    def test_counts_on_dirty(self, fig1_dirty):
        counts = TITLE_COUNTS.evaluate(fig1_dirty)
        assert counts[("ESP",)] == 4  # three fabricated wins + 2010

    def test_global_count(self, fig1_gt):
        view = CountView(TITLES, group_arity=0)
        counts = view.evaluate(fig1_gt)
        assert counts[()] == 9  # nine finals in the Figure 1 ground truth

    def test_restricted_base(self, fig1_gt):
        restricted = TITLE_COUNTS.restricted_base(("GER",))
        from repro.query.evaluator import evaluate

        answers = evaluate(restricted, fig1_gt)
        assert answers == {("13.07.2014",), ("08.07.1990",)}

    def test_restricted_base_arity_checked(self):
        with pytest.raises(QueryError):
            TITLE_COUNTS.restricted_base(("GER", "extra"))

    def test_group_arity_validation(self):
        with pytest.raises(QueryError):
            CountView(TITLES, group_arity=3)
        with pytest.raises(QueryError):
            CountView(TITLES, group_arity=2)  # nothing left to count

    def test_distinct_counting(self, fig1_gt):
        # duplicates in the base result (impossible for set semantics, but
        # the view also dedups counted suffixes across assignments)
        counts = TITLE_COUNTS.evaluate(fig1_gt)
        assert all(count >= 1 for count in counts.values())


class TestAggregateCleaning:
    def test_clean_group_deflates_wrong_count(self, fig1_dirty, fig1_gt):
        system = AggregateQOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        )
        report = system.clean_group(TITLE_COUNTS, ("ESP",))
        counts = TITLE_COUNTS.evaluate(fig1_dirty)
        assert counts[("ESP",)] == 1  # back to the true single title
        assert len(report.wrong_answers_removed) == 3

    def test_clean_group_inflates_low_count(self, fig1_dirty, fig1_gt):
        # Remove GER's 1990 title: its count drops to 1; cleaning restores.
        fig1_dirty.delete(fact("games", "08.07.1990", "GER", "ARG", "Final", "1:0"))
        system = AggregateQOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        )
        system.clean_group(TITLE_COUNTS, ("GER",))
        assert TITLE_COUNTS.evaluate(fig1_dirty)[("GER",)] == 2

    def test_clean_whole_view(self, fig1_dirty, fig1_gt):
        system = AggregateQOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        )
        report = system.clean(TITLE_COUNTS)
        assert TITLE_COUNTS.evaluate(fig1_dirty) == TITLE_COUNTS.evaluate(fig1_gt)
        assert report.converged

    def test_clean_discovers_missing_group(self, fig1_dirty, fig1_gt):
        # In the dirty DB the 1998/1994/1978 finals are Spain's; the true
        # winners FRA/BRA/ARG are missing groups entirely.
        system = AggregateQOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        )
        system.clean(TITLE_COUNTS)
        counts = TITLE_COUNTS.evaluate(fig1_dirty)
        assert counts.get(("FRA",)) == 1
        assert counts.get(("BRA",)) == 2  # 2002 + restored 1994
        assert counts.get(("ARG",)) == 1

    def test_edits_only_true_facts(self, fig1_dirty, fig1_gt):
        from repro.db.edits import EditKind

        system = AggregateQOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        )
        report = system.clean(TITLE_COUNTS)
        for edit in report.edits:
            if edit.kind is EditKind.INSERT:
                assert edit.fact in fig1_gt
            else:
                assert edit.fact not in fig1_gt

    def test_clean_view_noop_when_clean(self, fig1_gt):
        db = fig1_gt.copy()
        system = AggregateQOCO(
            db, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        )
        report = system.clean(TITLE_COUNTS)
        assert report.edits == []
        assert db == fig1_gt
