"""Property-based tests for the extension modules (UCQ, constraints,
composite questions, crowd simulation)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import crowd_remove_wrong_answer_composite
from repro.core.constraints import ConstraintCleaner
from repro.crowdsim.simulator import CrowdSimulator
from repro.db.constraints import ConstraintSet, ForeignKey, Key
from repro.db.database import Database
from repro.db.io import load_json, save_json
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import InteractionLog, QuestionKind
from repro.query.parser import parse_query
from repro.query.union import UnionQuery, evaluate_union
from repro.query.evaluator import evaluate

# ---------------------------------------------------------------------------
# strategies (shared with test_properties via re-definition: small schema)
# ---------------------------------------------------------------------------

CONSTANTS = ["a", "b", "c", "d"]

SCHEMA = Schema(
    [
        RelationSchema("r", ("p", "q")),
        RelationSchema("s", ("p",)),
    ]
)

ARITIES = {"r": 2, "s": 1}


@st.composite
def databases(draw):
    facts = draw(
        st.lists(
            st.sampled_from(["r", "s"]).flatmap(
                lambda rel: st.tuples(
                    st.just(rel),
                    st.tuples(*[st.sampled_from(CONSTANTS)] * ARITIES[rel]),
                )
            ),
            max_size=20,
        )
    )
    return Database(SCHEMA, [Fact(rel, values) for rel, values in facts])


DISJUNCT_A = parse_query("u(p) :- r(p, q).")
DISJUNCT_B = parse_query("u(p) :- s(p).")
UNION = UnionQuery((DISJUNCT_A, DISJUNCT_B), "u")

CONSTRAINTS = ConstraintSet(
    keys=[Key("r", (0,))],
    foreign_keys=[ForeignKey("r", (0,), "s", (0,))],
)


# ---------------------------------------------------------------------------
# UCQ properties
# ---------------------------------------------------------------------------


@given(db=databases())
@settings(max_examples=80, deadline=None)
def test_union_semantics_is_setwise_union(db):
    assert evaluate_union(UNION, db) == evaluate(DISJUNCT_A, db) | evaluate(
        DISJUNCT_B, db
    )


@given(db=databases())
@settings(max_examples=60, deadline=None)
def test_union_witnesses_cover_producing_disjuncts(db):
    for answer in evaluate_union(UNION, db):
        witnesses = UNION.witnesses(db, answer)
        assert witnesses
        producing = UNION.producing_disjuncts(db, answer)
        assert producing


# ---------------------------------------------------------------------------
# constraint properties
# ---------------------------------------------------------------------------


@given(db=databases(), gt=databases())
@settings(max_examples=50, deadline=None)
def test_constraint_repair_reaches_satisfaction_or_reports(db, gt):
    """With a perfect oracle over a constraint-satisfying ground truth,
    repair either satisfies the constraints or reports the obstruction."""
    # force the ground truth to satisfy the constraints: drop violators
    for violation in CONSTRAINTS.key_violations(gt):
        for fact in sorted(violation.facts, key=repr)[1:]:
            gt.delete(fact)
    for violation in CONSTRAINTS.foreign_key_violations(gt):
        gt.delete(violation.child_fact)
    assert CONSTRAINTS.is_satisfied(gt)

    cleaner = ConstraintCleaner(
        db, AccountingOracle(PerfectOracle(gt)), CONSTRAINTS, random.Random(0)
    )
    report = cleaner.repair()
    assert CONSTRAINTS.is_satisfied(db) or report.unresolved


@given(db=databases(), gt=databases())
@settings(max_examples=50, deadline=None)
def test_constraint_repair_never_increases_distance(db, gt):
    for violation in CONSTRAINTS.key_violations(gt):
        for fact in sorted(violation.facts, key=repr)[1:]:
            gt.delete(fact)
    for violation in CONSTRAINTS.foreign_key_violations(gt):
        gt.delete(violation.child_fact)
    before = db.distance(gt)
    ConstraintCleaner(
        db, AccountingOracle(PerfectOracle(gt)), CONSTRAINTS, random.Random(0)
    ).repair()
    assert db.distance(gt) <= before


# ---------------------------------------------------------------------------
# composite questions agree with single questions
# ---------------------------------------------------------------------------

COMPOSITE_QUERY = parse_query("q(p) :- r(p, q), s(q).")


@given(db=databases(), gt=databases(), batch=st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_composite_deletion_removes_answer(db, gt, batch):
    wrong = sorted(evaluate(COMPOSITE_QUERY, db) - evaluate(COMPOSITE_QUERY, gt))
    if not wrong:
        return
    answer = wrong[0]
    oracle = AccountingOracle(PerfectOracle(gt))
    crowd_remove_wrong_answer_composite(
        COMPOSITE_QUERY, db, answer, oracle, batch, random.Random(0)
    )
    assert answer not in evaluate(COMPOSITE_QUERY, db)


# ---------------------------------------------------------------------------
# persistence round-trip
# ---------------------------------------------------------------------------


@given(db=databases())
@settings(max_examples=40, deadline=None)
def test_json_round_trip(db, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "db.json"
    save_json(db, path)
    assert load_json(path) == db


# ---------------------------------------------------------------------------
# crowd simulator invariants
# ---------------------------------------------------------------------------

_KINDS = list(QuestionKind)


@given(
    kinds=st.lists(st.sampled_from(_KINDS), max_size=30),
    n_experts=st.integers(1, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_simulator_parallel_never_slower(kinds, n_experts, seed):
    log = InteractionLog()
    for kind in kinds:
        log.record(kind, 1)
    seq = CrowdSimulator(n_experts=n_experts, rng=random.Random(seed)).replay(
        log, parallel=False
    )
    par = CrowdSimulator(n_experts=n_experts, rng=random.Random(seed)).replay(
        log, parallel=True
    )
    assert len(seq.completions) == len(par.completions) == len(kinds)
    # With identical draws consumed in potentially different order the
    # comparison is statistical; assert the structural invariants instead.
    assert seq.makespan >= 0 and par.makespan >= 0
    for timeline in (seq, par):
        for event in timeline.answers:
            assert event.end > event.start
