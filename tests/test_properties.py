"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.qoco import QOCO, QOCOConfig
from repro.db.database import Database
from repro.db.edits import delete, insert
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.hitting.hitting_set import (
    all_minimal_hitting_sets,
    exact_minimum_hitting_set,
    greedy_hitting_set,
    is_hitting_set,
    unique_minimal_hitting_set,
)
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Atom, Inequality, Query, Var
from repro.query.evaluator import evaluate, naive_evaluate
from repro.query.parser import parse_query

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

CONSTANTS = ["a", "b", "c", "d", "e"]
VARIABLES = [Var(name) for name in ("x", "y", "z", "w")]

SCHEMA = Schema(
    [
        RelationSchema("r", ("p", "q")),
        RelationSchema("s", ("p",)),
        RelationSchema("t", ("p", "q", "u")),
    ]
)

ARITIES = {"r": 2, "s": 1, "t": 3}


@st.composite
def databases(draw):
    facts = draw(
        st.lists(
            st.sampled_from(["r", "s", "t"]).flatmap(
                lambda rel: st.tuples(
                    st.just(rel),
                    st.tuples(
                        *[st.sampled_from(CONSTANTS)] * ARITIES[rel]
                    ),
                )
            ),
            max_size=25,
        )
    )
    return Database(SCHEMA, [Fact(rel, values) for rel, values in facts])


@st.composite
def queries(draw):
    n_atoms = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n_atoms):
        rel = draw(st.sampled_from(["r", "s", "t"]))
        terms = tuple(
            draw(st.sampled_from(VARIABLES + CONSTANTS))  # type: ignore[operator]
            for _ in range(ARITIES[rel])
        )
        atoms.append(Atom(rel, terms))
    body_vars = sorted(set().union(*(a.variables() for a in atoms)), key=str)
    if not body_vars:
        atoms.append(Atom("s", (Var("x"),)))
        body_vars = [Var("x")]
    head = tuple(
        draw(st.sampled_from(body_vars))
        for _ in range(draw(st.integers(1, min(2, len(body_vars)))))
    )
    inequalities = []
    if len(body_vars) >= 2 and draw(st.booleans()):
        left, right = draw(st.sampled_from(body_vars)), draw(
            st.sampled_from(body_vars + CONSTANTS)  # type: ignore[operator]
        )
        if left != right:
            inequalities.append(Inequality(left, right))
    negated = []
    if draw(st.booleans()):
        rel = draw(st.sampled_from(["r", "s", "t"]))
        terms = tuple(
            draw(st.sampled_from(body_vars + CONSTANTS))  # type: ignore[operator]
            for _ in range(ARITIES[rel])
        )
        negated.append(Atom(rel, terms))
    return Query(head, tuple(atoms), tuple(inequalities), "prop", tuple(negated))


set_systems = st.lists(
    st.frozensets(st.integers(0, 7), min_size=1, max_size=4),
    min_size=0,
    max_size=6,
)


# ---------------------------------------------------------------------------
# evaluator properties
# ---------------------------------------------------------------------------


@given(db=databases(), query=queries())
@settings(max_examples=120, deadline=None)
def test_evaluator_matches_naive_semantics(db, query):
    assert evaluate(query, db) == naive_evaluate(query, db)


@given(db=databases(), query=queries())
@settings(max_examples=60, deadline=None)
def test_deleting_facts_never_adds_answers(db, query):
    """Conjunctive queries are monotone (negation breaks this, so the
    property is asserted on the positive part only)."""
    if query.negated_atoms:
        query = Query(query.head, query.atoms, query.inequalities, query.name)
    before = evaluate(query, db)
    victims = sorted(db, key=repr)[:3]
    for victim in victims:
        db.delete(victim)
    after = evaluate(query, db)
    assert after <= before


@given(query=queries())
@settings(max_examples=80, deadline=None)
def test_parser_round_trips_printed_queries(query):
    assert parse_query(str(query)) == query


# ---------------------------------------------------------------------------
# hitting set properties
# ---------------------------------------------------------------------------


@given(sets=set_systems)
@settings(max_examples=150, deadline=None)
def test_greedy_is_hitting_set_and_exact_is_optimal(sets):
    greedy = greedy_hitting_set(sets)
    exact = exact_minimum_hitting_set(sets)
    assert is_hitting_set(greedy, sets)
    assert is_hitting_set(exact, sets)
    assert len(exact) <= len(greedy)


@given(sets=set_systems)
@settings(max_examples=100, deadline=None)
def test_theorem_4_5_matches_enumeration(sets):
    """Unique minimal hitting set exists iff enumeration finds exactly one."""
    minimal = all_minimal_hitting_sets(sets)
    unique = unique_minimal_hitting_set(sets)
    if len(minimal) == 1:
        assert unique == minimal[0]
    else:
        assert unique is None


# ---------------------------------------------------------------------------
# edit properties (Proposition 3.3)
# ---------------------------------------------------------------------------


@given(db=databases(), other=databases())
@settings(max_examples=80, deadline=None)
def test_truth_guided_edits_never_increase_distance(db, other):
    """Inserting a true-missing or deleting a false-present fact shrinks
    the symmetric difference — Proposition 3.3."""
    ground_truth = other
    before = db.distance(ground_truth)
    missing = sorted(ground_truth.difference(db), key=repr)
    extra = sorted(db.difference(ground_truth), key=repr)
    if missing:
        insert(missing[0]).apply(db)
    if extra:
        delete(extra[0]).apply(db)
    assert db.distance(ground_truth) <= before


# ---------------------------------------------------------------------------
# end-to-end convergence (Proposition 3.4)
# ---------------------------------------------------------------------------

CONVERGENCE_QUERY = parse_query("q(x) :- r(x, y), s(y).")


@given(gt=databases(), dirty=databases())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_qoco_converges_with_perfect_oracle(gt, dirty):
    """For any instance pair, Algorithm 3 reaches Q(D') = Q(D_G)."""
    oracle = AccountingOracle(PerfectOracle(gt))
    system = QOCO(dirty, oracle, QOCOConfig(seed=0, max_iterations=25))
    report = system.clean(CONVERGENCE_QUERY)
    assert evaluate(CONVERGENCE_QUERY, dirty) == evaluate(CONVERGENCE_QUERY, gt)
    assert report.converged
