"""Unit tests for interaction logging and cost accounting."""

import pytest

from repro.oracle.questions import (
    CATEGORY_FILL_MISSING,
    CATEGORY_VERIFY_ANSWERS,
    CATEGORY_VERIFY_TUPLES,
    CLOSED_KINDS,
    OPEN_KINDS,
    InteractionLog,
    QuestionKind,
    category_of,
)


class TestCategories:
    def test_kinds_partition(self):
        assert CLOSED_KINDS | OPEN_KINDS == set(QuestionKind)
        assert not CLOSED_KINDS & OPEN_KINDS

    def test_category_mapping(self):
        assert category_of(QuestionKind.VERIFY_ANSWER) == CATEGORY_VERIFY_ANSWERS
        assert category_of(QuestionKind.VERIFY_FACT) == CATEGORY_VERIFY_TUPLES
        assert category_of(QuestionKind.VERIFY_CANDIDATE) == CATEGORY_VERIFY_TUPLES
        assert category_of(QuestionKind.COMPLETE_ASSIGNMENT) == CATEGORY_FILL_MISSING
        assert category_of(QuestionKind.COMPLETE_RESULT) == CATEGORY_FILL_MISSING


class TestInteractionLog:
    def test_totals(self):
        log = InteractionLog()
        log.record(QuestionKind.VERIFY_FACT, 1)
        log.record(QuestionKind.COMPLETE_ASSIGNMENT, 4)
        assert log.question_count == 2
        assert log.total_cost == 5
        assert log.closed_cost == 1
        assert log.open_cost == 4

    def test_cost_and_count_of(self):
        log = InteractionLog()
        log.record(QuestionKind.VERIFY_FACT, 1)
        log.record(QuestionKind.VERIFY_FACT, 1)
        log.record(QuestionKind.VERIFY_ANSWER, 1)
        assert log.cost_of([QuestionKind.VERIFY_FACT]) == 2
        assert log.count_of([QuestionKind.VERIFY_FACT]) == 2
        assert log.count_of([QuestionKind.VERIFY_ANSWER]) == 1

    def test_negative_cost_rejected(self):
        log = InteractionLog()
        with pytest.raises(ValueError):
            log.record(QuestionKind.VERIFY_FACT, -1)

    def test_category_costs(self):
        log = InteractionLog()
        log.record(QuestionKind.VERIFY_ANSWER, 1)
        log.record(QuestionKind.VERIFY_CANDIDATE, 1)
        log.record(QuestionKind.COMPLETE_RESULT, 2)
        assert log.category_costs() == {
            CATEGORY_VERIFY_ANSWERS: 1,
            CATEGORY_VERIFY_TUPLES: 1,
            CATEGORY_FILL_MISSING: 2,
        }

    def test_snapshot_measures_delta(self):
        log = InteractionLog()
        log.record(QuestionKind.VERIFY_FACT, 1)
        snap = log.snapshot()
        log.record(QuestionKind.VERIFY_FACT, 1)
        log.record(QuestionKind.COMPLETE_ASSIGNMENT, 3)
        assert snap.total_cost == 4
        assert snap.question_count == 2
        assert snap.cost_of([QuestionKind.VERIFY_FACT]) == 1

    def test_merge(self):
        a, b = InteractionLog(), InteractionLog()
        a.record(QuestionKind.VERIFY_FACT, 1)
        b.record(QuestionKind.VERIFY_ANSWER, 1)
        a.merge(b)
        assert a.question_count == 2
