"""Tests for key/FK constraints and constraint-driven cleaning (§9)."""

import random

import pytest

from repro.core.constraints import ConstraintCleaner
from repro.db.constraints import ConstraintSet, ForeignKey, Key
from repro.db.schema import Schema, SchemaError
from repro.db.tuples import fact
from repro.db.database import Database
from repro.datasets.worldcup import worldcup_constraints
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"teams": ["team", "continent"], "games": ["date", "winner"]}
    )


@pytest.fixture
def constraints():
    return ConstraintSet(
        keys=[Key("teams", (0,))],
        foreign_keys=[ForeignKey("games", (1,), "teams", (0,))],
    )


class TestDeclarations:
    def test_key_requires_positions(self):
        with pytest.raises(SchemaError):
            Key("r", ())
        with pytest.raises(SchemaError):
            Key("r", (0, 0))

    def test_fk_lengths_must_match(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", (0, 1), "b", (0,))
        with pytest.raises(SchemaError):
            ForeignKey("a", (), "b", ())

    def test_validate_against_schema(self, schema, constraints):
        db = Database(schema)
        constraints.validate_against(db)  # fine
        bad = ConstraintSet(keys=[Key("teams", (5,))])
        with pytest.raises(SchemaError):
            bad.validate_against(db)


class TestViolationDetection:
    def test_key_violation_found(self, schema, constraints):
        db = Database(
            schema, [fact("teams", "NED", "EU"), fact("teams", "NED", "SA")]
        )
        violations = constraints.key_violations(db)
        assert len(violations) == 1
        assert violations[0].facts == frozenset(
            {fact("teams", "NED", "EU"), fact("teams", "NED", "SA")}
        )

    def test_no_violation_on_identical_key_single_fact(self, schema, constraints):
        db = Database(schema, [fact("teams", "NED", "EU")])
        assert constraints.key_violations(db) == []

    def test_three_way_conflict_yields_three_pairs(self, schema, constraints):
        db = Database(
            schema,
            [
                fact("teams", "X", "EU"),
                fact("teams", "X", "SA"),
                fact("teams", "X", "AF"),
            ],
        )
        assert len(constraints.key_violations(db)) == 3

    def test_fk_violation_found(self, schema, constraints):
        db = Database(schema, [fact("games", "d1", "GER")])
        violations = constraints.foreign_key_violations(db)
        assert len(violations) == 1
        assert violations[0].child_fact == fact("games", "d1", "GER")

    def test_fk_satisfied(self, schema, constraints):
        db = Database(
            schema, [fact("games", "d1", "GER"), fact("teams", "GER", "EU")]
        )
        assert constraints.foreign_key_violations(db) == []
        assert constraints.is_satisfied(db)

    def test_ground_truth_satisfies_worldcup_constraints(self, worldcup_gt):
        constraints = worldcup_constraints()
        constraints.validate_against(worldcup_gt)
        assert constraints.is_satisfied(worldcup_gt)


class TestConstraintCleaner:
    def _cleaner(self, db, gt, constraints):
        return ConstraintCleaner(
            db, AccountingOracle(PerfectOracle(gt)), constraints, random.Random(0)
        )

    def test_key_conflict_resolved_to_truth(self, schema, constraints):
        gt = Database(schema, [fact("teams", "NED", "EU")])
        db = Database(
            schema, [fact("teams", "NED", "EU"), fact("teams", "NED", "SA")]
        )
        report = self._cleaner(db, gt, constraints).repair()
        assert constraints.is_satisfied(db)
        assert fact("teams", "NED", "EU") in db
        assert fact("teams", "NED", "SA") not in db
        assert report.resolved_key_violations == 1
        assert not report.unresolved

    def test_false_child_deleted(self, schema, constraints):
        gt = Database(schema, [fact("teams", "GER", "EU")])
        db = Database(schema, [fact("games", "d9", "XXX")])  # false child
        self._cleaner(db, gt, constraints).repair()
        assert fact("games", "d9", "XXX") not in db
        assert constraints.is_satisfied(db)

    def test_missing_parent_inserted(self, schema, constraints):
        gt = Database(
            schema, [fact("games", "d1", "GER"), fact("teams", "GER", "EU")]
        )
        db = Database(schema, [fact("games", "d1", "GER")])  # true child
        report = self._cleaner(db, gt, constraints).repair()
        assert fact("teams", "GER", "EU") in db
        assert report.resolved_fk_violations == 1

    def test_cascading_repairs(self, schema, constraints):
        # Deleting a false teams fact (key conflict) creates no dangling
        # children because the surviving fact carries the key.
        gt = Database(
            schema, [fact("games", "d1", "GER"), fact("teams", "GER", "EU")]
        )
        db = Database(
            schema,
            [
                fact("games", "d1", "GER"),
                fact("teams", "GER", "EU"),
                fact("teams", "GER", "AS"),
            ],
        )
        self._cleaner(db, gt, constraints).repair()
        assert constraints.is_satisfied(db)
        assert db == gt

    def test_worldcup_corruption_repaired(self, worldcup_gt):
        constraints = worldcup_constraints()
        db = worldcup_gt.copy()
        # Plant one violation of each kind.
        db.insert(fact("teams", "GER", "SA"))                 # key conflict
        db.insert(fact("goals", "Nobody Special", "13.07.2014"))  # dangling FK
        victim = sorted(db.facts("teams"))[0]
        report = ConstraintCleaner(
            db,
            AccountingOracle(PerfectOracle(worldcup_gt)),
            constraints,
            random.Random(0),
        ).repair()
        assert constraints.is_satisfied(db)
        assert fact("teams", "GER", "SA") not in db
        assert fact("goals", "Nobody Special", "13.07.2014") not in db
        assert not report.unresolved

    def test_edits_only_move_towards_truth(self, worldcup_gt):
        constraints = worldcup_constraints()
        db = worldcup_gt.copy()
        db.insert(fact("teams", "BRA", "EU"))
        before = db.distance(worldcup_gt)
        ConstraintCleaner(
            db,
            AccountingOracle(PerfectOracle(worldcup_gt)),
            constraints,
            random.Random(0),
        ).repair()
        assert db.distance(worldcup_gt) <= before

    def test_unresolvable_reported(self, schema, constraints):
        # An oracle that affirms everything cannot resolve a key conflict.
        class YesOracle(PerfectOracle):
            def verify_fact(self, fact):
                return True

        gt = Database(schema, [fact("teams", "NED", "EU")])
        db = Database(
            schema, [fact("teams", "NED", "EU"), fact("teams", "NED", "SA")]
        )
        report = ConstraintCleaner(
            db, AccountingOracle(YesOracle(gt)), constraints, random.Random(0)
        ).repair()
        assert report.unresolved
