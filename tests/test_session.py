"""Unit tests for cleaning reports (repro.core.session)."""

from repro.core.session import CleaningReport
from repro.db.edits import delete, insert
from repro.db.tuples import fact
from repro.oracle.questions import InteractionLog, QuestionKind


class TestCleaningReport:
    def test_edit_partition(self):
        report = CleaningReport(query_name="q")
        report.edits = [
            delete(fact("r", 1)),
            insert(fact("r", 2)),
            delete(fact("r", 3)),
        ]
        assert len(report.deletions) == 2
        assert len(report.insertions) == 1

    def test_total_cost_reflects_log(self):
        log = InteractionLog()
        log.record(QuestionKind.VERIFY_FACT, 1)
        log.record(QuestionKind.COMPLETE_ASSIGNMENT, 4)
        report = CleaningReport(query_name="q", log=log)
        assert report.total_cost == 5

    def test_summary_fields(self):
        report = CleaningReport(query_name="q")
        report.wrong_answers_removed = [("a",)]
        report.missing_answers_added = [("b",), ("c",)]
        report.edits = [delete(fact("r", 1)), insert(fact("r", 2))]
        report.iterations = 2
        text = report.summary()
        assert "q:" in text
        assert "1 wrong removed" in text
        assert "2 missing added" in text
        assert "1-/1+" in text
        assert "2 iteration" in text

    def test_defaults(self):
        report = CleaningReport(query_name="q")
        assert report.converged
        assert report.edits == []
        assert report.iterations == 0
        assert report.total_cost == 0
