"""Unit tests for repro.db.edits."""

import pytest

from repro.db.database import Database
from repro.db.edits import EditKind, apply_edits, delete, insert
from repro.db.schema import Schema
from repro.db.tuples import fact


@pytest.fixture
def db():
    schema = Schema.from_dict({"r": ["a"]})
    return Database(schema, [fact("r", 1)])


class TestEdit:
    def test_insert_applies(self, db):
        assert insert(fact("r", 2)).apply(db) is True
        assert fact("r", 2) in db

    def test_insert_idempotent(self, db):
        assert insert(fact("r", 1)).apply(db) is False  # D ⊕ R(t)+ = D

    def test_delete_applies(self, db):
        assert delete(fact("r", 1)).apply(db) is True
        assert fact("r", 1) not in db

    def test_delete_idempotent(self, db):
        assert delete(fact("r", 9)).apply(db) is False  # D ⊕ R(t)- = D

    def test_str(self):
        assert str(insert(fact("r", 1))) == "r(1)+"
        assert str(delete(fact("r", 1))) == "r(1)-"

    def test_inverted(self, db):
        edit = insert(fact("r", 2))
        edit.apply(db)
        edit.inverted().apply(db)
        assert fact("r", 2) not in db

    def test_inverted_kinds(self):
        assert insert(fact("r", 1)).inverted().kind is EditKind.DELETE
        assert delete(fact("r", 1)).inverted().kind is EditKind.INSERT

    def test_edit_is_hashable(self):
        assert {insert(fact("r", 1)), insert(fact("r", 1))} == {insert(fact("r", 1))}


class TestApplyEdits:
    def test_sequence_counts_changes(self, db):
        edits = [insert(fact("r", 2)), insert(fact("r", 2)), delete(fact("r", 1))]
        assert apply_edits(db, edits) == 2

    def test_update_modeled_as_delete_insert(self, db):
        # The paper models updates as deletion followed by insertion.
        apply_edits(db, [delete(fact("r", 1)), insert(fact("r", 99))])
        assert fact("r", 1) not in db
        assert fact("r", 99) in db
