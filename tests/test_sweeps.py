"""Tests for the §7.2 parameter sweep drivers."""

import pytest

from repro.experiments.sweeps import SWEEP_HEADERS, sweep_cleanliness, sweep_skewness
from repro.workloads import Q1

CONVERGED = 6


@pytest.fixture(scope="module")
def protected(worldcup_gt):
    return set(worldcup_gt.facts("stages"))


class TestCleanlinessSweep:
    def test_two_point_sweep(self, worldcup_gt, protected):
        result = sweep_cleanliness(
            worldcup_gt, Q1, levels=(0.85, 0.95), protected=protected
        )
        assert len(result.rows) == 2
        assert all(row[CONVERGED] for row in result.rows)
        assert result.headers == SWEEP_HEADERS

    def test_dirtier_data_more_errors(self, worldcup_gt, protected):
        result = sweep_cleanliness(
            worldcup_gt, Q1, levels=(0.7, 0.95), protected=protected
        )
        errors = [row[1] + row[2] for row in result.rows]  # wrong + missing
        assert errors[0] >= errors[1]

    def test_render(self, worldcup_gt, protected):
        result = sweep_cleanliness(
            worldcup_gt, Q1, levels=(0.95,), protected=protected
        )
        assert "cleanliness" in result.render()


class TestSkewnessSweep:
    def test_extremes_converge(self, worldcup_gt, protected):
        result = sweep_skewness(
            worldcup_gt, Q1, levels=(0.0, 1.0), protected=protected
        )
        assert len(result.rows) == 2
        assert all(row[CONVERGED] for row in result.rows)

    def test_pure_skew_profiles(self, worldcup_gt, protected):
        result = sweep_skewness(
            worldcup_gt, Q1, levels=(0.0, 1.0), cleanliness=0.85,
            protected=protected,
        )
        only_missing, only_false = result.rows
        # skew 0 plants no false facts: D ⊂ D_G, and Q1 is monotone, so
        # no wrong answers can exist; skew 1 plants no missing facts:
        # D ⊇ D_G, so no missing answers can exist.
        assert only_missing[1] == 0  # wrong answers at skew 0
        assert only_false[2] == 0    # missing answers at skew 1
        assert only_missing[-1] and only_false[-1]  # both converge
