"""Fallback routing: unsupported shapes silently run on the reference.

The non-reference backends advertise capability flags
(``Capabilities``); :func:`resolve_backend` wraps them so any query a
backend cannot run is routed to the naive reference instead — with a
``backend.fallback`` telemetry counter, and *identical results*.  These
tests pin both halves of that contract: the accounting and the
semantics.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from qoco_strategies import databases, queries
from repro.core.qoco import QOCO, QOCOConfig
from repro.db.tuples import Fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Query
from repro.query.backend import (
    FallbackBackend,
    NaiveBackend,
    resolve_backend,
)
from repro.query.evaluator import naive_evaluate
from repro.query.parser import parse_query
from repro.telemetry import telemetry_session

FALLBACK_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class _OpaqueQuery(Query):
    """A query-like shape no backend claims (``type(q) is Query`` fails)."""


class TestSQLNegationFallback:
    @FALLBACK_SETTINGS
    @given(database=databases(), query=queries(negation=True, min_negated=1))
    def test_negated_queries_fall_back_with_identical_answers(
        self, database, query
    ):
        backend = resolve_backend("sql")
        assert isinstance(backend, FallbackBackend)
        assert not backend.preferred.supports(query)
        with telemetry_session() as (hub, _):
            answers = backend.evaluate(query, database)
            assert hub.counter("backend.fallback") == 1
            assert hub.counter("backend.sql.fallback") == 1
        assert answers == naive_evaluate(query, database)

    @FALLBACK_SETTINGS
    @given(database=databases(), query=queries(negation=False))
    def test_supported_queries_do_not_count_fallback(self, database, query):
        backend = resolve_backend("sql")
        with telemetry_session() as (hub, _):
            answers = backend.evaluate(query, database)
            assert hub.counter("backend.fallback") == 0
        assert answers == naive_evaluate(query, database)

    @FALLBACK_SETTINGS
    @given(database=databases(), query=queries(negation=True, min_negated=1))
    def test_full_run_results_match_reference(self, database, query):
        backend = resolve_backend("sql")
        reference = NaiveBackend().run(query, database)
        routed = backend.run(query, database)
        assert routed.answers == reference.answers
        assert routed.support == reference.support
        assert routed.witness_support == reference.witness_support


class TestOpaqueShapeFallback:
    @FALLBACK_SETTINGS
    @given(database=databases(), query=queries(negation=True))
    def test_columnar_routes_opaque_shapes_to_naive(self, database, query):
        opaque = _OpaqueQuery(
            query.head,
            query.atoms,
            query.inequalities,
            query.name,
            query.negated_atoms,
        )
        backend = resolve_backend("columnar")
        assert not backend.preferred.supports(opaque)
        with telemetry_session() as (hub, _):
            answers = backend.evaluate(opaque, database)
            assert hub.counter("backend.columnar.fallback") == 1
        assert answers == naive_evaluate(query, database)


class TestCleaningLoopFallbackParity:
    """``QOCO(backend="sql")`` on a negated query cleans identically."""

    QUERY = 'q(x) :- r(x, y), s(y), not r(y, "a").'

    def _clean(self, backend):
        from qoco_strategies import SCHEMA
        from repro.db.database import Database

        gt = Database(
            SCHEMA,
            [
                Fact("r", ("a", "b")),
                Fact("r", ("c", "b")),
                Fact("s", ("b",)),
                Fact("s", ("c",)),
            ],
        )
        dirty = Database(
            SCHEMA,
            [
                Fact("r", ("a", "b")),
                Fact("r", ("b", "a")),  # spurious
                Fact("s", ("b",)),
            ],
        )
        qoco = QOCO(
            dirty,
            AccountingOracle(PerfectOracle(gt)),
            QOCOConfig(seed=0, backend=backend),
        )
        report = qoco.clean(parse_query(self.QUERY))
        return dirty.state_digest(), report

    def test_sql_backend_cleans_bit_identically(self):
        digest_naive, report_naive = self._clean("naive")
        digest_sql, report_sql = self._clean("sql")
        assert digest_sql == digest_naive
        assert [(e.kind.value, e.fact) for e in report_sql.edits] == [
            (e.kind.value, e.fact) for e in report_naive.edits
        ]
        assert report_sql.converged == report_naive.converged

    def test_columnar_backend_cleans_bit_identically(self):
        digest_naive, _ = self._clean("naive")
        digest_columnar, _ = self._clean("columnar")
        assert digest_columnar == digest_naive
