"""Unit tests for the CI bench gate (``benchmarks/check_regression.py``).

The gate is a standalone script, not a package module, so it is loaded
here by file path.  Covered: verdict logic per direction, markdown
step-summary rendering, the ``$GITHUB_STEP_SUMMARY`` writer, and the
``compare()`` / ``main()`` exit codes CI keys off.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
cr = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", cr)
_spec.loader.exec_module(cr)


def metric(value, direction="exact", tolerance=0.0) -> dict:
    return {"value": value, "direction": direction, "tolerance": tolerance}


def payload(path: Path, metrics: dict) -> Path:
    path.write_text(json.dumps({"metrics": metrics}), encoding="utf-8")
    return path


class TestVerdicts:
    def test_exact_pass_and_fail(self):
        assert cr.verdict_for("m", metric(7), metric(7)).status == "ok"
        assert cr.verdict_for("m", metric(7), metric(8)).status == "FAIL"

    def test_exact_float_tolerates_representation_noise(self):
        v = cr.verdict_for("m", metric(0.3), metric(0.1 + 0.2))
        assert v.ok

    def test_lower_direction_uses_baseline_tolerance(self):
        base = metric(10.0, "lower", 0.25)
        assert cr.verdict_for("m", base, metric(12.5)).status == "ok"
        assert cr.verdict_for("m", base, metric(12.6)).status == "FAIL"
        assert cr.verdict_for("m", base, metric(12.6)).band == "<= 12.5"

    def test_higher_direction_uses_baseline_tolerance(self):
        base = metric(100, "higher", 0.1)
        assert cr.verdict_for("m", base, metric(90)).status == "ok"
        assert cr.verdict_for("m", base, metric(89)).status == "FAIL"

    def test_fresh_run_cannot_loosen_the_gate(self):
        # direction/tolerance come from the BASELINE, not the fresh payload
        base = metric(10.0, "exact")
        fresh = metric(15.0, "lower", 99.0)
        assert cr.verdict_for("m", base, fresh).status == "FAIL"

    def test_missing_metric_fails(self):
        v = cr.verdict_for("m", metric(1), None)
        assert v.status == "missing" and not v.ok
        assert "missing" in v.line()

    def test_unknown_direction_fails_closed(self):
        assert not cr.verdict_for("m", metric(1, "sideways"), metric(1)).ok

    def test_collect_orders_and_flags_newcomers(self):
        base = {"b": metric(1), "a": metric(2)}
        fresh = {"a": metric(2), "b": metric(1), "z_new": metric(9)}
        verdicts = cr.collect_verdicts(base, fresh)
        assert [v.name for v in verdicts] == ["a", "b", "z_new"]
        assert verdicts[-1].status == "new"
        assert verdicts[-1].ok  # new metrics report but pass
        assert all(v.ok for v in verdicts)

    def test_judge_wrapper_matches_verdict(self):
        ok, line = cr.judge("m", metric(3), metric(4))
        assert not ok and line.startswith("FAIL")


class TestMarkdown:
    def test_table_has_header_rows_and_badges(self):
        verdicts = cr.collect_verdicts(
            {"good": metric(1), "bad": metric(2)},
            {"good": metric(1), "bad": metric(3), "extra": metric(5)},
        )
        text = cr.markdown_table(verdicts, title="Bench gate: BENCH_x.json")
        assert text.startswith("### Bench gate: BENCH_x.json")
        assert "| metric | baseline | measured | direction | band | verdict |" in text
        assert "| `bad` | 2 | 3 | exact | == baseline | ❌ regressed |" in text
        assert "✅ ok" in text and "🆕 ungated" in text
        assert "**1 regression(s)** out of 3 metric(s)." in text

    def test_all_green_summary_line(self):
        text = cr.markdown_table(cr.collect_verdicts({"m": metric(1)}, {"m": metric(1)}))
        assert "All 1 metric(s) within tolerance." in text

    def test_missing_values_render_as_dash(self):
        text = cr.markdown_table([cr.verdict_for("m", metric(1), None)])
        assert "| `m` | 1 | — |" in text


class TestStepSummary:
    def test_appends_to_explicit_path(self, tmp_path):
        target = tmp_path / "summary.md"
        target.write_text("earlier\n", encoding="utf-8")
        assert cr.write_step_summary("no newline", path=str(target))
        assert target.read_text(encoding="utf-8") == "earlier\nno newline\n"

    def test_env_var_path(self, tmp_path, monkeypatch):
        target = tmp_path / "gh.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        assert cr.write_step_summary("hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_noop_outside_actions(self, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert not cr.write_step_summary("dropped")


class TestCompareAndMain:
    def test_compare_exit_codes_and_summary(self, tmp_path, monkeypatch, capsys):
        summary = tmp_path / "s.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        base = payload(tmp_path / "base.json", {"q": metric(4)})
        good = payload(tmp_path / "BENCH_x.json", {"q": metric(4)})
        assert cr.compare(good, base) == 0
        assert "Bench gate: BENCH_x.json" in summary.read_text(encoding="utf-8")
        bad = payload(tmp_path / "BENCH_y.json", {"q": metric(5)})
        assert cr.compare(bad, base) == 1
        out = capsys.readouterr().out
        assert "1 metric(s) regressed" in out

    def test_compare_fails_on_dropped_metric(self, tmp_path):
        base = payload(tmp_path / "base.json", {"kept": metric(1), "gone": metric(2)})
        fresh = payload(tmp_path / "BENCH_z.json", {"kept": metric(1)})
        assert cr.compare(fresh, base) == 1

    def test_main_update_then_gate(self, tmp_path, capsys):
        fresh = payload(tmp_path / "BENCH_m.json", {"q": metric(3)})
        baseline_dir = tmp_path / "baselines"
        argv = ["check_regression.py", str(fresh), "--baseline-dir", str(baseline_dir)]
        assert cr.main(argv) == 1  # no baseline yet
        assert cr.main(argv + ["--update"]) == 0
        assert (baseline_dir / "BENCH_m.json").exists()
        assert cr.main(argv) == 0  # now gated and green
        payload(fresh, {"q": metric(4)})
        assert cr.main(argv) == 1
        capsys.readouterr()

    def test_main_rejects_ungated_payload(self, tmp_path):
        bogus = tmp_path / "BENCH_b.json"
        bogus.write_text(json.dumps({"results": {}}), encoding="utf-8")
        with pytest.raises(SystemExit):
            cr.main(["check_regression.py", str(bogus), "--update"])

    def test_main_missing_fresh_file(self, tmp_path):
        assert cr.main(["check_regression.py", str(tmp_path / "nope.json")]) == 1
