"""Unit tests for repro.db.tuples."""

import pytest

from repro.db.tuples import Fact, fact, facts


class TestFact:
    def test_construction_and_str(self):
        f = fact("teams", "GER", "EU")
        assert f.relation == "teams"
        assert f.values == ("GER", "EU")
        assert str(f) == "teams(GER, EU)"

    def test_arity(self):
        assert fact("r", 1, 2, 3).arity == 3

    def test_hashable_and_equal(self):
        assert fact("r", 1) == Fact("r", (1,))
        assert {fact("r", 1), Fact("r", (1,))} == {fact("r", 1)}

    def test_ordering(self):
        assert fact("a", 1) < fact("b", 1)
        assert fact("a", 1) < fact("a", 2)

    def test_list_values_coerced_to_tuple(self):
        f = Fact("r", [1, 2])  # type: ignore[arg-type]
        assert isinstance(f.values, tuple)
        assert hash(f)  # hashable after coercion

    def test_replace(self):
        f = fact("teams", "GER", "EU")
        g = f.replace(1, "SA")
        assert g == fact("teams", "GER", "SA")
        assert f == fact("teams", "GER", "EU")  # original untouched

    def test_replace_out_of_range(self):
        with pytest.raises(IndexError):
            fact("r", 1).replace(5, 2)

    def test_mixed_value_types(self):
        f = fact("players", "Pele", 1940)
        assert f.values == ("Pele", 1940)


class TestFactsHelper:
    def test_facts_builds_rows(self):
        rows = facts("teams", [("GER", "EU"), ("BRA", "SA")])
        assert rows == [fact("teams", "GER", "EU"), fact("teams", "BRA", "SA")]

    def test_facts_empty(self):
        assert facts("r", []) == []
