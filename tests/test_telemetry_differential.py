"""Differential harness: instrumentation must never change semantics.

Two families of properties over randomized query/database pairs:

1. ``evaluate`` (index-backed backtracking join) agrees with
   ``naive_evaluate`` (cross-product reference semantics) — with
   telemetry both off and on.
2. Telemetry-on and telemetry-off runs are *semantically identical*:
   same answers, same witnesses, and — for full cleaning sessions —
   the same edits, question log, and report, bit for bit.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from qoco_strategies import databases, queries
from repro.core.parallel import ParallelQOCO
from repro.core.qoco import QOCO, QOCOConfig
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import Evaluator, evaluate, naive_evaluate
from repro.telemetry import telemetry_session
from repro.workloads import EX1


DIFFERENTIAL_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ---------------------------------------------------------------------------
# evaluate vs naive_evaluate
# ---------------------------------------------------------------------------


class TestEvaluateAgainstReference:
    @DIFFERENTIAL_SETTINGS
    @given(query=queries(), database=databases())
    def test_evaluate_matches_naive(self, query, database):
        assert evaluate(query, database) == naive_evaluate(query, database)

    @DIFFERENTIAL_SETTINGS
    @given(query=queries(), database=databases())
    def test_evaluate_matches_naive_with_telemetry_on(self, query, database):
        with telemetry_session():
            fast = evaluate(query, database)
        assert fast == naive_evaluate(query, database)


# ---------------------------------------------------------------------------
# telemetry on/off equivalence
# ---------------------------------------------------------------------------


class TestTelemetryIsSemanticsFree:
    @DIFFERENTIAL_SETTINGS
    @given(query=queries(), database=databases())
    def test_answers_identical_on_and_off(self, query, database):
        baseline = evaluate(query, database)
        with telemetry_session() as (hub, _):
            instrumented = evaluate(query, database)
            assert hub.counter("evaluator.evaluations") == 1  # it did record
        assert instrumented == baseline

    @DIFFERENTIAL_SETTINGS
    @given(query=queries(), database=databases())
    def test_witnesses_identical_on_and_off(self, query, database):
        answers = sorted(evaluate(query, database))[:3]
        baseline = [Evaluator(query, database).witnesses(a) for a in answers]
        with telemetry_session():
            instrumented = [
                Evaluator(query, database).witnesses(a) for a in answers
            ]
        assert instrumented == baseline

    def _clean(self, qoco_cls, seed, **kwargs):
        """One full cleaning run from a fixed dirty state; returns the
        comparable artifacts (answers, edits, question log, report shape)."""
        from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth

        dirty = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        if qoco_cls is QOCO:
            runner = QOCO(dirty, oracle, QOCOConfig(seed=seed))
        else:
            runner = ParallelQOCO(dirty, oracle, seed=seed, **kwargs)
        report = runner.clean(EX1)
        return {
            "answers": evaluate(EX1, dirty),
            "edits": [(e.kind.value, e.fact) for e in report.edits],
            "log": report.log.to_dicts(),
            "iterations": report.iterations,
            "removed": report.wrong_answers_removed,
            "added": report.missing_answers_added,
            "converged": report.converged,
        }

    def test_sequential_cleaning_identical_on_and_off(self):
        for seed in (0, 7, 42):
            baseline = self._clean(QOCO, seed)
            with telemetry_session():
                instrumented = self._clean(QOCO, seed)
            assert instrumented == baseline

    def test_parallel_cleaning_identical_on_and_off(self):
        for seed in (0, 7):
            baseline = self._clean(ParallelQOCO, seed)
            with telemetry_session():
                instrumented = self._clean(ParallelQOCO, seed)
            assert instrumented == baseline

    @DIFFERENTIAL_SETTINGS
    @given(query=queries(), database=databases(), seed=st.integers(0, 2**16))
    def test_randomized_cleaning_identical_on_and_off(self, query, database, seed):
        """Telemetry equivalence on *randomized* instances: corrupt the
        random database against itself-as-ground-truth via one random
        flip, then clean and compare the full artifact set."""
        ground_truth = database
        dirty_base = database.copy()
        rng = random.Random(seed)
        pool = [f for rel in ("r", "s", "t") for f in dirty_base.facts(rel)]
        if pool:  # delete one fact so cleaning has something to find
            dirty_base.delete(rng.choice(sorted(pool, key=repr)))

        def run():
            dirty = dirty_base.copy()
            oracle = AccountingOracle(PerfectOracle(ground_truth))
            report = QOCO(
                dirty, oracle, QOCOConfig(seed=seed, max_iterations=4)
            ).clean(query)
            return {
                "answers": evaluate(query, dirty),
                "edits": [(e.kind.value, e.fact) for e in report.edits],
                "log": report.log.to_dicts(),
                "converged": report.converged,
            }

        baseline = run()
        with telemetry_session():
            instrumented = run()
        assert instrumented == baseline
