"""Unit tests for the weighted query graph (Figure 2 left)."""

from repro.query.graph import QueryGraph, build_query_graph
from repro.query.parser import parse_query


class TestQueryGraph:
    def test_weight_symmetric_access(self):
        g = QueryGraph(3)
        g.add_weight(2, 0, 5)
        assert g.weight(0, 2) == 5
        assert g.weight(2, 0) == 5

    def test_add_weight_accumulates(self):
        g = QueryGraph(2)
        g.add_weight(0, 1, 1)
        g.add_weight(0, 1, 2)
        assert g.weight(0, 1) == 3

    def test_self_edge_ignored(self):
        g = QueryGraph(2)
        g.add_weight(1, 1, 5)
        assert g.edges() == []

    def test_neighbors(self):
        g = QueryGraph(3)
        g.add_weight(0, 1, 1)
        g.add_weight(0, 2, 1)
        assert g.neighbors(0) == [1, 2]
        assert g.neighbors(1) == [0]

    def test_connectivity(self):
        g = QueryGraph(3)
        g.add_weight(0, 1, 1)
        assert not g.is_connected()
        g.add_weight(1, 2, 1)
        assert g.is_connected()

    def test_trivial_graph_connected(self):
        assert QueryGraph(1).is_connected()


class TestBuildQueryGraph:
    def test_paper_figure2_example(self):
        # (x,y,z,w) :- R1(x,y), R2(y,z), R3(z,w), R4(z,v); z != x, w != x
        q = parse_query(
            "q(x, y, z, w) :- r1(x, y), r2(y, z), r3(z, w), r4(z, v), "
            "z != x, w != x."
        )
        g = build_query_graph(q)
        # Shared variables: r1-r2 share y; r2-r3, r2-r4, r3-r4 share z.
        # Inequality z != x touches every atom pair where one side has x
        # or z; w != x touches pairs covering w and x.
        assert g.weight(0, 1) == 1 + 1          # y + (z != x)
        assert g.weight(1, 2) == 1 + 1          # z + (z != x)
        assert g.weight(2, 3) == 1 + 1          # z + (z != x)
        assert g.weight(0, 3) == 0 + 1          # (z != x) via x in r1, z in r4
        assert g.weight(0, 2) == 0 + 2          # both inequalities bridge r1-r3

    def test_weights_count_shared_variables(self):
        q = parse_query("q(a, b, c) :- r(a, b), s(b, c), t(a, c).")
        g = build_query_graph(q)
        assert g.weight(0, 1) == 1  # b
        assert g.weight(1, 2) == 1  # c
        assert g.weight(0, 2) == 1  # a

    def test_no_shared_variables_no_edge(self):
        q = parse_query("q(a, b) :- r(a), s(b).")
        g = build_query_graph(q)
        assert g.edges() == []
        assert not g.is_connected()

    def test_inequality_bridges_atoms(self):
        q = parse_query("q(a, b) :- r(a), s(b), a != b.")
        g = build_query_graph(q)
        assert g.weight(0, 1) == 1
        assert g.is_connected()

    def test_multiple_shared_variables(self):
        q = parse_query("q(a, b) :- r(a, b), s(a, b).")
        g = build_query_graph(q)
        assert g.weight(0, 1) == 2
