"""Tests for the controlled noise model (Section 7.2 parameters)."""

import random

import pytest

from repro.datasets.noise import (
    NoiseError,
    NoiseSpec,
    fabricate_fact,
    inject_result_errors,
    make_dirty,
    measure_cleanliness,
    measure_skewness,
)
from repro.query.evaluator import evaluate
from repro.workloads import Q3, SOCCER_QUERIES


class TestNoiseSpec:
    def test_counts_skew_one(self):
        false, missing = NoiseSpec(cleanliness=0.8, skewness=1.0).counts(1000)
        assert missing == 0
        assert false == 250  # 1000/(1000+F) = 0.8

    def test_counts_skew_zero(self):
        false, missing = NoiseSpec(cleanliness=0.8, skewness=0.0).counts(1000)
        assert false == 0
        assert missing == 200  # (1000-M)/1000 = 0.8

    def test_counts_balanced(self):
        false, missing = NoiseSpec(cleanliness=0.8, skewness=0.5).counts(1000)
        # (G-M)/(G+F) = 0.8 and F = M
        assert false == missing
        assert abs((1000 - missing) / (1000 + false) - 0.8) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseSpec(cleanliness=0.0)
        with pytest.raises(ValueError):
            NoiseSpec(skewness=1.5)


class TestMakeDirty:
    @pytest.mark.parametrize("cleanliness", [0.6, 0.8, 0.95])
    @pytest.mark.parametrize("skewness", [0.0, 0.5, 1.0])
    def test_targets_hit(self, worldcup_gt, cleanliness, skewness):
        spec = NoiseSpec(cleanliness=cleanliness, skewness=skewness)
        dirty = make_dirty(worldcup_gt, spec, random.Random(7))
        assert measure_cleanliness(dirty, worldcup_gt) == pytest.approx(
            cleanliness, abs=0.02
        )
        assert measure_skewness(dirty, worldcup_gt) == pytest.approx(
            skewness, abs=0.02
        )

    def test_protected_facts_survive(self, worldcup_gt):
        protected = set(worldcup_gt.facts("stages"))
        dirty = make_dirty(
            worldcup_gt,
            NoiseSpec(cleanliness=0.6, skewness=0.0),
            random.Random(7),
            protected=protected,
        )
        for f in protected:
            assert f in dirty

    def test_ground_truth_untouched(self, worldcup_gt):
        size = len(worldcup_gt)
        make_dirty(worldcup_gt, NoiseSpec(), random.Random(0))
        assert len(worldcup_gt) == size

    def test_measures_on_identical_pair(self, worldcup_gt):
        assert measure_cleanliness(worldcup_gt, worldcup_gt) == 1.0
        assert measure_skewness(worldcup_gt, worldcup_gt) == 1.0

    def test_result_cleanliness(self, worldcup_gt):
        from repro.datasets.noise import measure_result_cleanliness

        assert measure_result_cleanliness(worldcup_gt, worldcup_gt, Q3) == 1.0
        errors = inject_result_errors(
            worldcup_gt, Q3, n_wrong=3, n_missing=3, rng=random.Random(9)
        )
        level = measure_result_cleanliness(errors.dirty, worldcup_gt, Q3)
        true_count = len(evaluate(Q3, worldcup_gt))
        expected = (true_count - 3) / (true_count + 3)
        assert level == pytest.approx(expected)


class TestFabricateFact:
    def test_fabricated_fact_is_false(self, worldcup_gt, rng):
        for _ in range(20):
            fake = fabricate_fact(worldcup_gt, set(), rng)
            assert fake not in worldcup_gt

    def test_respects_forbidden(self, worldcup_gt, rng):
        seen = set()
        for _ in range(20):
            fake = fabricate_fact(worldcup_gt, seen, rng)
            assert fake not in seen
            seen.add(fake)

    def test_relation_restriction(self, worldcup_gt, rng):
        fake = fabricate_fact(worldcup_gt, set(), rng, relation="teams")
        assert fake.relation == "teams"


class TestInjectResultErrors:
    @pytest.mark.parametrize("n_wrong,n_missing", [(0, 3), (3, 0), (3, 3)])
    def test_exact_error_counts(self, worldcup_gt, n_wrong, n_missing):
        result = inject_result_errors(
            worldcup_gt, Q3, n_wrong, n_missing, random.Random(11)
        )
        assert len(result.wrong_answers) == n_wrong
        assert len(result.missing_answers) >= min(
            n_missing, 1 if n_missing else 0
        )
        # wrong/missing sets consistent with actual evaluation
        true_answers = evaluate(Q3, worldcup_gt)
        dirty_answers = evaluate(Q3, result.dirty)
        assert result.wrong_answers == frozenset(dirty_answers - true_answers)
        assert result.missing_answers == frozenset(true_answers - dirty_answers)

    def test_no_errors_requested(self, worldcup_gt):
        result = inject_result_errors(worldcup_gt, Q3, 0, 0, random.Random(1))
        assert result.dirty == worldcup_gt

    def test_too_many_missing_rejected(self, worldcup_gt):
        total = len(evaluate(Q3, worldcup_gt))
        with pytest.raises(NoiseError):
            inject_result_errors(worldcup_gt, Q3, 0, total + 1, random.Random(1))

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q5"])
    def test_works_across_queries(self, worldcup_gt, name):
        query = SOCCER_QUERIES[name]
        result = inject_result_errors(worldcup_gt, query, 2, 2, random.Random(3))
        assert len(result.wrong_answers) == 2
        assert len(result.missing_answers) >= 1

    def test_deterministic(self, worldcup_gt):
        a = inject_result_errors(worldcup_gt, Q3, 2, 2, random.Random(5))
        b = inject_result_errors(worldcup_gt, Q3, 2, 2, random.Random(5))
        assert a.dirty == b.dirty
