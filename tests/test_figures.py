"""Shape tests for the figure drivers — the paper's comparative claims.

These run the actual experiment drivers (with reduced parameters where
useful) and assert the *shape* of each figure: who wins, how costs move
with noise — the properties Section 7.2 reports.
"""

import pytest

from repro.experiments.figures import (
    ALL_FIGURES,
    dbgroup_case_study,
    fig3a,
    fig3b,
    fig3c,
    fig3d,
    fig3e,
    fig3f,
    fig4,
)

QUESTIONS = 3  # row column index of the questions segment


@pytest.fixture(scope="module")
def f3a():
    return fig3a()


@pytest.fixture(scope="module")
def f3b():
    return fig3b()


@pytest.fixture(scope="module")
def f3d():
    return fig3d()


class TestFig3a:
    def test_rows_cover_all_cells(self, f3a):
        assert len(f3a.rows) == 9  # 3 queries x 3 algorithms

    def test_qoco_never_worse_than_qoco_minus(self, f3a):
        for group in ("Q1", "Q2", "Q3"):
            rows = f3a.by_algorithm(group)
            assert rows["QOCO"][QUESTIONS] <= rows["QOCO-"][QUESTIONS]

    def test_greedy_beats_random(self, f3a):
        for group in ("Q1", "Q2", "Q3"):
            rows = f3a.by_algorithm(group)
            assert rows["QOCO"][QUESTIONS] < rows["Random"][QUESTIONS]

    def test_random_avoids_least(self, f3a):
        # Random verifies (nearly) every witness fact: the only questions
        # it skips are those answered for free by the cross-answer cache,
        # so its avoided bar never exceeds QOCO's.
        for group in ("Q1", "Q2", "Q3"):
            rows = f3a.by_algorithm(group)
            assert rows["Random"][QUESTIONS + 1] <= rows["QOCO"][QUESTIONS + 1]

    def test_totals_constant_within_group(self, f3a):
        for group in ("Q1", "Q2", "Q3"):
            totals = {row[-1] for row in f3a.by_algorithm(group).values()}
            assert len(totals) == 1

    def test_render_contains_rows(self, f3a):
        text = f3a.render()
        assert "QOCO" in text and "Random" in text


class TestFig3b:
    def test_provenance_never_worst(self, f3b):
        for group in ("Q3", "Q4", "Q5"):
            rows = f3b.by_algorithm(group)
            others = [rows["MinCut"][QUESTIONS], rows["Random"][QUESTIONS]]
            assert rows["Provenance"][QUESTIONS] <= max(others)

    def test_provenance_best_or_tied_overall(self, f3b):
        total = {
            algo: sum(
                rows[algo][QUESTIONS]
                for rows in (f3b.by_algorithm(g) for g in ("Q3", "Q4", "Q5"))
            )
            for algo in ("Provenance", "MinCut", "Random")
        }
        assert total["Provenance"] <= total["MinCut"]
        assert total["Provenance"] <= total["Random"]


class TestFig3d:
    def test_cost_grows_with_wrong_answers(self, f3d):
        qoco = [
            f3d.by_algorithm(f"wrong={n}")["QOCO"][QUESTIONS] for n in (2, 5, 10)
        ]
        assert qoco[0] <= qoco[1] <= qoco[2]

    def test_gap_to_random_grows_with_noise(self, f3d):
        gaps = []
        for n in (2, 10):
            rows = f3d.by_algorithm(f"wrong={n}")
            gaps.append(rows["Random"][QUESTIONS] - rows["QOCO"][QUESTIONS])
        assert gaps[0] < gaps[1]


class TestFig3e:
    def test_cost_grows_with_missing_answers(self):
        result = fig3e()
        prov = [
            result.by_algorithm(f"missing={n}")["Provenance"][QUESTIONS]
            for n in (2, 5, 10)
        ]
        assert prov[0] <= prov[1] <= prov[2]


class TestFig3f:
    def test_question_types_grow_with_errors(self):
        result = fig3f()
        tuples_col = [row[2] for row in result.rows]
        fill_col = [row[3] for row in result.rows]
        assert tuples_col[0] <= tuples_col[1] <= tuples_col[2]
        assert fill_col[0] <= fill_col[1] <= fill_col[2]


class TestFig4:
    @pytest.fixture(scope="class")
    def f4(self):
        # one query and few trials keeps the test fast; the benchmark runs
        # the full configuration
        return fig4(queries=("Q2",), n_trials=3)

    def test_costs_exceed_single_expert(self, f4, worldcup_gt):
        # Majority voting needs >= 2 answers per closed question, so the
        # crowd answer total clearly exceeds the perfect-expert cost.
        for row in f4.rows:
            assert row[5] > 40  # Q2: single-expert run costs ~30 units

    def test_residuals_bounded(self, f4):
        # Imperfect experts (p=0.1) occasionally lock in a wrong majority
        # vote; residuals stay a small fraction of the ~20-answer result.
        for row in f4.rows:
            assert row[6] <= 8


class TestDBGroupCaseStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return dbgroup_case_study()

    def test_all_queries_match_ground_truth_after_cleaning(self, study):
        for row in study.rows:
            assert row[-1] is True

    def test_errors_discovered(self, study):
        total_wrong = sum(row[1] for row in study.rows)
        total_missing = sum(row[2] for row in study.rows)
        assert total_wrong >= 2
        assert total_missing >= 5


class TestRegistry:
    def test_all_figures_listed(self):
        assert set(ALL_FIGURES) == {
            "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig4",
            "dbgroup", "sweep-cleanliness", "sweep-skewness", "dispatch",
        }
