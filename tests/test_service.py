"""The crowd service, end to end over real sockets (ISSUE 8).

The acceptance bar: a tenant cleaning ``worldcup`` through
:class:`~repro.service.client.ServiceClient`, with crowd answers
arriving via the streaming worker feed, must land the *same* database
(bit-identical ``state_digest``) at the *same* question cost as an
in-process :class:`~repro.server.manager.SessionManager` run; and
admission control must shed load with 429s while accepted sessions
still converge, with queue depth bounded and observable.
"""

from __future__ import annotations

import time

import pytest

from repro.durability.codec import database_digest
from repro.oracle.perfect import PerfectOracle
from repro.server.manager import SessionManager
from repro.service.client import ServiceClient, ServiceError, WorkerClient
from repro.telemetry import telemetry_session
from service_harness import ServiceHarness

from repro.service.cli import build_workload


def in_process_baseline(workload, query):
    """Digest + cost of the same cleaning run without the network."""
    dirty = workload.dirty.copy()
    manager = SessionManager(dirty, mode="sync")
    session = manager.open_session(query, PerfectOracle(workload.ground_truth))
    manager.run_all()
    assert session.state.value == "committed"
    return database_digest(manager.database), session.total_cost


class TestEndToEnd:
    @pytest.mark.parametrize("dataset,stream", [("figure1", False), ("worldcup", True)])
    def test_digest_and_cost_parity_with_in_process_run(self, dataset, stream):
        workload = build_workload(dataset)
        query = workload.queries[0]
        expected_digest, expected_cost = in_process_baseline(workload, query)

        manager = SessionManager(workload.dirty.copy(), mode="sync")
        with ServiceHarness(manager) as harness:
            workers = [
                WorkerClient(
                    harness.host, harness.port, f"w{i}",
                    PerfectOracle(workload.ground_truth),
                )
                for i in range(2)
            ]
            threads = [w.start_thread(stream=stream) for w in workers]
            try:
                with ServiceClient(harness.host, harness.port) as client:
                    doc = client.clean(query, timeout=180.0)
                    digest = client.digest()["digest"]
            finally:
                for worker in workers:
                    worker.stop()
            assert doc["state"] == "committed", doc
            assert doc["report"]["converged"] is True
            assert digest == expected_digest
            assert doc["cost"] == expected_cost
        for thread in threads:
            thread.join(timeout=3)

    def test_session_lifecycle_and_report_fields(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        with ServiceHarness(manager) as harness:
            worker = WorkerClient(
                harness.host, harness.port, "w0",
                PerfectOracle(workload.ground_truth),
            )
            worker.start_thread()
            try:
                with ServiceClient(harness.host, harness.port, tenant="acme") as client:
                    sid = client.open(workload.queries[0])
                    doc = client.wait(sid, timeout=120.0)
                    assert doc["session"] == sid
                    assert doc["tenant"] == "acme"
                    assert doc["done"] is True
                    report = doc["report"]
                    assert report["query_name"] == workload.queries[0].name
                    assert report["edits"], "cleaning produced no edits"
                    assert doc["cost"] == report["total_cost"]
                    # status after the fact is stable and idempotent
                    assert client.status(sid)["state"] == "committed"
                    stats = client.stats()
                    assert stats["sessions"].get("committed") == 1
                    assert stats["broker"]["resolved"] >= 1
                    assert client.healthz()["role"] == "primary"
            finally:
                worker.stop()

    def test_finished_sessions_are_evicted_after_retention(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        with ServiceHarness(manager, entry_retention=0.3, tick=0.05) as harness:
            worker = WorkerClient(
                harness.host, harness.port, "w0",
                PerfectOracle(workload.ground_truth),
            )
            worker.start_thread()
            try:
                with ServiceClient(harness.host, harness.port) as client:
                    sid = client.open(workload.queries[0])
                    doc = client.wait(sid, timeout=120.0)
                    assert doc["state"] == "committed"
                    # housekeeping evicts the finished entry once its
                    # retention lapses; the document 404s after that
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        try:
                            client.status(sid)
                        except ServiceError as error:
                            assert error.status == 404
                            break
                        time.sleep(0.05)
                    else:
                        raise AssertionError("finished session never evicted")
                    assert client.stats()["sessions"] == {}
            finally:
                worker.stop()

    def test_unknown_session_is_404_and_bad_body_is_400(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        with ServiceHarness(manager) as harness:
            with ServiceClient(harness.host, harness.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.status(999)
                assert excinfo.value.status == 404
                with pytest.raises(ServiceError) as excinfo:
                    client._http.request("POST", "/v1/sessions", {"tenant": "x"})
                assert excinfo.value.status == 400


class TestAdmissionControl:
    def test_429_under_load_accepted_sessions_still_converge(self):
        workload = build_workload("burst", tenants=6)
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        with telemetry_session() as (hub, _):
            with ServiceHarness(
                manager, max_inflight_per_tenant=1, max_inflight_total=3
            ) as harness:
                with ServiceClient(harness.host, harness.port) as client:
                    # no workers yet: every admitted session parks on its
                    # first crowd question, holding its in-flight slot
                    first = client.open(workload.queries[0], tenant="t0")
                    with pytest.raises(ServiceError) as excinfo:
                        client.open(workload.queries[0], tenant="t0")
                    assert excinfo.value.status == 429
                    assert excinfo.value.retry_after is not None
                    client.open(workload.queries[1], tenant="t1")
                    client.open(workload.queries[2], tenant="t2")
                    # total cap (3) reached: even a fresh tenant is shed
                    with pytest.raises(ServiceError) as excinfo:
                        client.open(workload.queries[3], tenant="t3")
                    assert excinfo.value.status == 429
                    stats = client.stats()
                    assert stats["inflight"] <= stats["caps"]["total"]
                    assert stats["broker"]["pending"] >= 1

                    # workers arrive: the admitted sessions drain and
                    # converge; freed slots admit the shed tenant
                    worker = WorkerClient(
                        harness.host, harness.port, "w0",
                        PerfectOracle(workload.ground_truth),
                    )
                    worker.start_thread()
                    try:
                        docs = [client.wait(s, timeout=120.0) for s in (first, 1, 2)]
                        late = client.open_when_admitted(
                            workload.queries[3], tenant="t3", deadline=60.0
                        )
                        docs.append(client.wait(late, timeout=120.0))
                    finally:
                        worker.stop()
                    assert all(d["state"] == "committed" for d in docs), docs
                    assert all(d["report"]["converged"] for d in docs)
            counters = hub.counters()
            histograms = hub.histograms()
        assert counters["service.admission_rejections"] >= 2
        depth = histograms["service.queue_depth"]
        assert depth.maximum <= 3, "queue depth exceeded the admission cap"
        assert counters["service.requests"] > 0
        assert "service.request_latency_s" in histograms
