"""Tests for the parallel (round-based) main loop (Appendix B)."""

import random

import pytest

from repro.core.parallel import (
    ParallelQOCO,
    RoundScheduler,
    insertion_task,
    removal_task,
)
from repro.core.qoco import QOCO, QOCOConfig
from repro.core.split import ProvenanceSplit
from repro.core.insertion import InsertionConfig
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import Evaluator, evaluate
from repro.workloads import EX1, EX2, Q3


@pytest.fixture
def oracle(fig1_gt):
    return AccountingOracle(PerfectOracle(fig1_gt))


class TestRemovalTask:
    def test_single_task_equivalent_to_algorithm1(self, fig1_dirty, fig1_gt, oracle):
        witnesses = [
            frozenset(w) for w in Evaluator(EX1, fig1_dirty).witnesses(("ESP",))
        ]
        scheduler = RoundScheduler(oracle)
        (edits,) = scheduler.run([removal_task(witnesses)])
        assert edits is not None
        fig1_dirty.apply(edits)
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
        for edit in edits:
            assert edit.fact not in fig1_gt

    def test_failed_task_reports_none(self, fig1_gt, oracle):
        # an empty witness can never be destroyed: the task fails and the
        # scheduler reports None in its slot (others keep their results)
        bad = removal_task([frozenset()])
        good = removal_task([])
        scheduler = RoundScheduler(oracle)
        results = scheduler.run([bad, good])
        assert results[0] is None
        assert results[1] == []

    def test_yes_oracle_resolved_by_singleton_rule(self, fig1_gt):
        # Like Algorithm 1, the singleton rule closes out even a lying
        # yes-oracle: the last fact of a witness is deleted by inference.
        class YesOracle(PerfectOracle):
            def verify_fact(self, fact):
                return True

        witnesses = [frozenset({fact("teams", "A", "B"), fact("teams", "C", "D")})]
        scheduler = RoundScheduler(AccountingOracle(YesOracle(fig1_gt)))
        (result,) = scheduler.run([removal_task(witnesses)])
        assert result is not None
        assert len(result) == 1  # one inferred deletion finished the job

    def test_rounds_bounded_by_max_task_questions(self, fig1_dirty, fig1_gt, oracle):
        # two parallel removals share rounds
        fig1_dirty.insert(fact("games", "01.01.1999", "FRA", "GER", "Final", "9:0"))
        fig1_dirty.insert(fact("games", "02.01.1999", "FRA", "ITA", "Final", "9:0"))
        evaluator = Evaluator(EX1, fig1_dirty)
        tasks = [
            removal_task([frozenset(w) for w in evaluator.witnesses(("ESP",))]),
            removal_task([frozenset(w) for w in evaluator.witnesses(("FRA",))]),
        ]
        scheduler = RoundScheduler(oracle)
        results = scheduler.run(tasks)
        assert all(r is not None for r in results)
        total_questions = oracle.log.question_count
        assert scheduler.rounds < total_questions  # parallelism paid off
        assert scheduler.peak_width == 2


class TestInsertionTask:
    def test_single_task_inserts_witness(self, fig1_dirty, fig1_gt, oracle):
        task = insertion_task(
            EX2, fig1_dirty, ("Andrea Pirlo",),
            ProvenanceSplit(), random.Random(0), InsertionConfig(),
        )
        scheduler = RoundScheduler(oracle)
        (edits,) = scheduler.run([task])
        assert edits is not None
        assert ("Andrea Pirlo",) in evaluate(EX2, fig1_dirty)

    def test_already_present_answer_is_free(self, fig1_dirty, fig1_gt, oracle):
        task = insertion_task(
            EX2, fig1_dirty, ("Mario Goetze",),
            ProvenanceSplit(), random.Random(0), InsertionConfig(),
        )
        scheduler = RoundScheduler(oracle)
        (edits,) = scheduler.run([task])
        assert edits == []
        assert oracle.log.question_count == 0


class TestParallelQOCO:
    def test_same_outcome_as_sequential(self, fig1_gt):
        from repro.datasets.figure1 import figure1_dirty

        sequential_db = figure1_dirty()
        QOCO(
            sequential_db, AccountingOracle(PerfectOracle(fig1_gt)), QOCOConfig(seed=0)
        ).clean(EX1)

        parallel_db = figure1_dirty()
        report = ParallelQOCO(
            parallel_db, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        ).clean(EX1)
        assert evaluate(EX1, parallel_db) == evaluate(EX1, sequential_db)
        assert evaluate(EX1, parallel_db) == evaluate(EX1, fig1_gt)
        assert report.converged

    def test_rounds_fewer_than_questions(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        report = ParallelQOCO(fig1_dirty, oracle, seed=0).clean(EX1)
        assert report.rounds < oracle.log.question_count

    def test_side_effects_cleaned_across_iterations(self, fig1_dirty, fig1_gt):
        # the Totti example again, through the parallel loop
        report = ParallelQOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), seed=0
        ).clean(EX2)
        assert evaluate(EX2, fig1_dirty) == evaluate(EX2, fig1_gt)
        assert ("Francesco Totti",) in report.wrong_answers_removed

    def test_on_worldcup_scale(self, worldcup_gt):
        from repro.datasets.noise import inject_result_errors

        errors = inject_result_errors(
            worldcup_gt, Q3, n_wrong=4, n_missing=4, rng=random.Random(55)
        )
        dirty = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = ParallelQOCO(dirty, oracle, seed=55).clean(Q3)
        assert evaluate(Q3, dirty) == evaluate(Q3, worldcup_gt)
        assert report.converged
        # with ~40 answers verified in one wave, rounds collapse
        assert report.rounds < oracle.log.question_count / 2

    def test_completion_width_batches_missing_answers(self, worldcup_gt):
        from repro.datasets.noise import inject_result_errors

        errors = inject_result_errors(
            worldcup_gt, Q3, n_wrong=0, n_missing=4, rng=random.Random(56)
        )
        dirty = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = ParallelQOCO(
            dirty, oracle, completion_width=8, seed=56
        ).clean(Q3)
        assert evaluate(Q3, dirty) == evaluate(Q3, worldcup_gt)
        assert len(report.missing_answers_added) >= 1

    def test_clean_database_single_round(self, fig1_gt):
        db = fig1_gt.copy()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        report = ParallelQOCO(db, oracle, seed=0).clean(EX1)
        assert report.edits == []
        assert report.rounds <= 3
