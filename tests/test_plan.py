"""The adaptive question planner (PR 9): signatures, bandit, cost model,
similarity reuse, capacity scheduling, and the bit-identical pinned-arm
anchor."""

from __future__ import annotations

import pytest

from repro.core.qoco import QOCO, QOCOConfig
from repro.dispatch.dedup import AnswerBoard, question_key
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.plan import (
    ArmStats,
    BanditPlanner,
    CapacityScheduler,
    CostModel,
    UCB1,
    derive_seed,
    query_signature,
    similarity_key,
)
from repro.query.parser import parse_query
from repro.server.manager import SessionManager
from repro.server.policy import TenantPolicy
from repro.service.broker import QuestionBroker
from repro.telemetry import telemetry_session
from repro.workloads import EX1


# ---------------------------------------------------------------------------
# query-shape signatures
# ---------------------------------------------------------------------------
class TestQuerySignature:
    def test_invariant_under_variable_renaming(self):
        a = parse_query("q(x) :- r(x, y), s(y, z).")
        b = parse_query("q(u) :- r(u, v), s(v, w).")
        assert query_signature(a) == query_signature(b)

    def test_invariant_under_constant_substitution(self):
        a = parse_query('q(x) :- r(x, "Final").')
        b = parse_query('q(x) :- r(x, "Semi").')
        assert query_signature(a) == query_signature(b)

    def test_invariant_under_body_reordering(self):
        a = parse_query("q(x) :- r(x, y), s(y, z).")
        b = parse_query("q(x) :- s(y, z), r(x, y).")
        assert query_signature(a) == query_signature(b)

    def test_distinguishes_join_structure(self):
        chain = parse_query("q(x) :- r(x, y), s(y, z).")
        star = parse_query("q(x) :- r(x, y), s(x, z).")
        assert query_signature(chain) != query_signature(star)

    def test_distinguishes_constant_positions(self):
        free = parse_query("q(x) :- r(x, y).")
        bound = parse_query('q(x) :- r(x, "EU").')
        assert query_signature(free) != query_signature(bound)

    def test_inequalities_participate(self):
        plain = parse_query("q(x) :- r(x, y), r(x, z).")
        strict = parse_query("q(x) :- r(x, y), r(x, z), y != z.")
        assert query_signature(plain) != query_signature(strict)

    def test_signature_is_hashable(self):
        assert hash(query_signature(EX1)) == hash(query_signature(EX1))


# ---------------------------------------------------------------------------
# UCB1 + cost model
# ---------------------------------------------------------------------------
class TestUCB1:
    def test_unplayed_arms_first_in_registration_order(self):
        bandit = UCB1(("a", "b", "c"), seed=0)
        assert bandit.select({}) == "a"
        assert bandit.select({"a": ArmStats(1, 5.0, 5)}) == "b"

    def test_prefers_cheaper_arm_once_explored(self):
        bandit = UCB1(("cheap", "dear"), exploration=0.1, seed=0)
        stats = {
            "cheap": ArmStats(20, 20.0, 20),  # mean 1.0
            "dear": ArmStats(20, 200.0, 200),  # mean 10.0
        }
        assert bandit.select(stats) == "cheap"

    def test_single_arm_consumes_no_randomness(self):
        bandit = UCB1(("only",), seed=7)
        before = bandit._rng.getstate()
        for _ in range(5):
            assert bandit.select({}) == "only"
        assert bandit._rng.getstate() == before

    def test_tie_break_is_seeded(self):
        stats = {"a": ArmStats(3, 3.0, 3), "b": ArmStats(3, 3.0, 3)}
        picks = [UCB1(("a", "b"), seed=11).select(stats) for _ in range(3)]
        assert len(set(picks)) == 1  # same seed, same pick, every time


class TestCostModel:
    SIG = ("cq", (0,), ((False, "r", (0, 1)),), ())

    def test_records_and_averages(self):
        model = CostModel()
        model.record(self.SIG, "mincut", 4.0, 4)
        model.record(self.SIG, "mincut", 2.0, 2)
        stats = model.stats(self.SIG, ("mincut",))["mincut"]
        assert stats.pulls == 2
        assert stats.mean_cost == pytest.approx(3.0)
        assert stats.questions == 6

    def test_global_prior_backs_unseen_shapes(self):
        model = CostModel()
        model.record(self.SIG, "naive", 8.0, 8)
        other = ("cq", (0,), ((False, "s", (0,)),), ())
        prior = model.stats(other, ("naive",))["naive"]
        assert prior.pulls == 1 and prior.mean_cost == pytest.approx(8.0)

    def test_estimate_is_best_observed_mean(self):
        model = CostModel()
        assert model.estimate(self.SIG) == 0.0
        model.record(self.SIG, "naive", 9.0, 9)
        model.record(self.SIG, "mincut", 3.0, 3)
        assert model.estimate(self.SIG) == pytest.approx(3.0)

    def test_snapshot_warm_start_round_trip(self):
        model = CostModel()
        model.record(self.SIG, "mincut", 5.0, 5)
        model.record(self.SIG, "naive", 1.0, 1)
        fresh = CostModel()
        assert fresh.warm_start(model.snapshot(), ("mincut", "naive")) == 2
        assert fresh.estimate(self.SIG) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# the bandit planner
# ---------------------------------------------------------------------------
class TestBanditPlanner:
    def test_unknown_arm_fails_at_construction(self):
        with pytest.raises(Exception, match="no-such-split"):
            BanditPlanner(arms=("no-such-split",))

    def test_learns_the_cheap_arm(self):
        planner = BanditPlanner(arms=("naive", "mincut"), seed=0, exploration=0.5)
        query = parse_query("q(x) :- r(x, y), s(y, z).")
        for _ in range(60):
            choice = planner.choose(query)
            cost = 1.0 if choice.arm == "mincut" else 6.0
            planner.observe(choice, cost=cost, questions=int(cost))
        stats = planner.cost_model.stats(query_signature(query), planner.arms)
        assert stats["mincut"].pulls > stats["naive"].pulls
        assert planner.estimate(query) == pytest.approx(1.0)

    def test_same_seed_same_decision_sequence(self):
        query = parse_query("q(x) :- r(x, y), s(y, z).")

        def run(seed):
            planner = BanditPlanner(arms=("naive", "random", "mincut"), seed=seed)
            arms = []
            for step in range(25):
                choice = planner.choose(query)
                arms.append(choice.arm)
                planner.observe(
                    choice, cost=float(step % 3) + 1.0, questions=step % 3 + 1
                )
            return arms

        assert run(5) == run(5)

    def test_per_shape_bandits_are_independent(self):
        planner = BanditPlanner(arms=("naive", "mincut"), seed=0)
        chain = parse_query("q(x) :- r(x, y), s(y, z).")
        star = parse_query("q(x) :- r(x, y), s(x, z).")
        planner.choose(chain)
        planner.choose(star)
        assert len(planner._bandits) == 2

    def test_telemetry_counters(self):
        planner = BanditPlanner(arms=("naive", "mincut"), seed=0)
        query = parse_query("q(x) :- r(x, y).")
        with telemetry_session() as (hub, sink):
            choice = planner.choose(query)
            planner.observe(choice, cost=2.5, questions=3)
            assert hub.counter("plan.decisions") == 1
            assert hub.counter("plan.episodes") == 1
            assert hub.counter(f"plan.pulls.{choice.arm}") == 1
            assert hub.counter(f"plan.cost.{choice.arm}") == pytest.approx(2.5)
            assert hub.counter(f"plan.questions.{choice.arm}") == 3

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(3, "planner") == derive_seed(3, "planner")
        assert derive_seed(3, "planner") != derive_seed(3, "other")
        assert derive_seed(None, "planner") == derive_seed(0, "planner")


# ---------------------------------------------------------------------------
# the correctness anchor: pinned planner == static strategy, bit for bit
# ---------------------------------------------------------------------------
class TestPinnedArmParity:
    @pytest.mark.parametrize("arm", ["mincut", "provenance"])
    def test_pinned_bandit_matches_static_run(self, fig1_gt, arm):
        from repro.datasets.figure1 import figure1_dirty

        static_db = figure1_dirty()
        static_oracle = AccountingOracle(PerfectOracle(fig1_gt))
        static = QOCO(
            static_db, static_oracle, QOCOConfig(split=arm, seed=0)
        ).clean(EX1)

        pinned_db = figure1_dirty()
        pinned_oracle = AccountingOracle(PerfectOracle(fig1_gt))
        pinned = QOCO(
            pinned_db,
            pinned_oracle,
            QOCOConfig(planner=BanditPlanner(arms=(arm,), seed=0), seed=0),
        ).clean(EX1)

        assert pinned_db.state_digest() == static_db.state_digest()
        assert [(e.kind.value, e.fact) for e in pinned.edits] == [
            (e.kind.value, e.fact) for e in static.edits
        ]
        assert pinned_oracle.log.to_dicts() == static_oracle.log.to_dicts()
        assert pinned_oracle.log.total_cost == static_oracle.log.total_cost

    def test_same_seed_bandit_replays_bit_identical(self, fig1_gt):
        """Satellite: the planner RNG derives from the session seed, so a
        same-seed adaptive run is a bit-identical replay."""
        from repro.datasets.figure1 import figure1_dirty

        def run():
            db = figure1_dirty()
            oracle = AccountingOracle(PerfectOracle(fig1_gt))
            report = QOCO(
                db, oracle, QOCOConfig(planner="bandit", seed=42)
            ).clean(EX1)
            return (
                db.state_digest(),
                [(e.kind.value, e.fact) for e in report.edits],
                oracle.log.to_dicts(),
            )

        assert run() == run()

    def test_adaptive_run_still_cleans(self, fig1_gt):
        from repro.datasets.figure1 import figure1_dirty
        from repro.query.evaluator import evaluate

        db = figure1_dirty()
        report = QOCO(
            db,
            AccountingOracle(PerfectOracle(fig1_gt)),
            QOCOConfig(planner="bandit", seed=1),
        ).clean(EX1)
        assert report.converged
        assert evaluate(EX1, db) == evaluate(EX1, fig1_gt)


# ---------------------------------------------------------------------------
# similarity-based answer reuse
# ---------------------------------------------------------------------------
class TestSimilarityKeys:
    def test_renamed_queries_share_a_class(self):
        a = parse_query('q(x) :- teams(x, "EU"), games(d, x, y, w, u).')
        b = parse_query('q(p) :- teams(p, "EU"), games(e, p, r, s, t).')
        ka = similarity_key(question_key(("verify_answer", a, ("ESP",))))
        kb = similarity_key(question_key(("verify_answer", b, ("ESP",))))
        assert ka is not None
        assert ka == kb

    def test_constants_are_payload_not_shape(self):
        a = parse_query('q(x) :- teams(x, "EU").')
        ka = similarity_key(question_key(("verify_answer", a, ("ESP",))))
        kb = similarity_key(question_key(("verify_answer", a, ("GER",))))
        assert ka != kb

    def test_open_questions_have_no_class(self):
        assert similarity_key(("complete_result", EX1, ())) is None
        fact_key = question_key(("verify_fact", ("teams", "ESP", "EU")))
        assert similarity_key(fact_key) is None

    def test_board_serves_renamed_twin(self):
        a = parse_query("q(x) :- r(x, y), s(y, z).")
        b = parse_query("q(u) :- s(v, w), r(u, v).")
        board = AnswerBoard(similarity=True)
        key_a = ("verify_answer", a, ("1",))
        key_b = ("verify_answer", b, ("1",))
        board.put(key_a, True)
        assert board.get(key_b) is None  # exact identity still misses
        assert board.get_similar(key_b) is True
        assert board.similarity_hits == 1

    def test_disabled_board_never_matches(self):
        a = parse_query("q(x) :- r(x, y).")
        b = parse_query("q(u) :- r(u, v).")
        board = AnswerBoard()
        board.put(("verify_answer", a, ("1",)), True)
        assert board.get_similar(("verify_answer", b, ("1",))) is None

    def test_broker_coalesces_renamed_twin(self):
        a = parse_query("q(x) :- r(x, y), s(y, z).")
        b = parse_query("q(u) :- s(v, w), r(u, v).")
        broker = QuestionBroker(similarity=True)
        first = broker.submit(
            "verify_answer", {"n": 1}, question_key(("verify_answer", a, ("1",)))
        )
        twin = broker.submit(
            "verify_answer", {"n": 2}, question_key(("verify_answer", b, ("1",)))
        )
        assert twin is first
        assert broker.similarity_coalesced == 1
        assert first.subscribers == 2

    def test_broker_similarity_off_by_default(self):
        a = parse_query("q(x) :- r(x, y).")
        b = parse_query("q(u) :- r(u, v).")
        broker = QuestionBroker()
        first = broker.submit(
            "verify_answer", {}, question_key(("verify_answer", a, ("1",)))
        )
        twin = broker.submit(
            "verify_answer", {}, question_key(("verify_answer", b, ("1",)))
        )
        assert twin is not first
        assert broker.similarity_coalesced == 0


# ---------------------------------------------------------------------------
# tenant-aware capacity scheduling
# ---------------------------------------------------------------------------
class TestCapacityScheduler:
    def test_score_prefers_many_subscribers_and_priority(self):
        sched = CapacityScheduler()

        class Q:
            kind = "verify_fact"
            subscribers = 1
            priority = 1.0
            votes_needed = 1
            votes = {}

        solo, duo = Q(), Q()
        duo.subscribers = 3
        assert sched.score(duo, 0.0) > sched.score(solo, 0.0)
        vip = Q()
        vip.priority = 5.0
        assert sched.score(vip, 0.0) > sched.score(solo, 0.0)

    def test_open_questions_cost_more(self):
        sched = CapacityScheduler()

        class Q:
            subscribers = 1
            priority = 1.0
            votes_needed = 1
            votes = {}

        closed, open_ = Q(), Q()
        closed.kind = "verify_fact"
        open_.kind = "complete_result"
        assert sched.score(closed, 0.0) > sched.score(open_, 0.0)

    def test_broker_lease_is_fifo_without_scheduler(self):
        broker = QuestionBroker()
        first = broker.submit("verify_fact", {}, None, priority=1.0)
        broker.submit("verify_fact", {}, None, priority=9.0)
        assert broker.lease("w", 0.0)["qid"] == first.qid

    def test_broker_lease_follows_scheduler_scores(self):
        broker = QuestionBroker(scheduler=CapacityScheduler())
        broker.submit("verify_fact", {}, None, priority=1.0)
        vip = broker.submit("verify_fact", {}, None, priority=9.0)
        assert broker.lease("w", 0.0)["qid"] == vip.qid

    def test_coalesced_questions_jump_the_queue(self):
        broker = QuestionBroker(scheduler=CapacityScheduler())
        broker.submit("verify_fact", {}, "k-solo")
        crowd = broker.submit("verify_fact", {}, "k-duo")
        assert broker.submit("verify_fact", {}, "k-duo") is crowd
        assert broker.lease("w", 0.0)["qid"] == crowd.qid

    def test_equal_scores_fall_back_to_age(self):
        broker = QuestionBroker(scheduler=CapacityScheduler())
        first = broker.submit("verify_fact", {}, None)
        broker.submit("verify_fact", {}, None)
        assert broker.lease("w", 0.0)["qid"] == first.qid


# ---------------------------------------------------------------------------
# planner-aware session admission
# ---------------------------------------------------------------------------
class _FixedEstimate:
    """A planner stub: estimate() by query name, never chooses."""

    def __init__(self, costs):
        self.costs = costs

    def estimate(self, query):
        return self.costs.get(query.name, 0.0)


class TestAdmission:
    def _drain_order(self, manager, sessions):
        order = []
        original = manager._drive

        def spy(session):
            order.append(session.query.name)
            original(session)

        manager._drive = spy
        manager.run_all()
        return order

    def test_cheapest_expected_first_among_equal_priority(self, fig1_gt):
        dear = parse_query('dear(x) :- teams(x, "EU").')
        cheap = parse_query('cheap(x) :- teams(x, "SA").')
        manager = SessionManager(
            fig1_gt.copy(),
            max_concurrent=1,
            planner=_FixedEstimate({"dear": 9.0, "cheap": 1.0}),
        )
        oracle = PerfectOracle(fig1_gt)
        manager.open_session(dear, oracle)
        manager.open_session(cheap, oracle)
        assert self._drain_order(manager, 2) == ["cheap", "dear"]

    def test_priority_still_dominates_cost(self, fig1_gt):
        dear = parse_query('dear(x) :- teams(x, "EU").')
        cheap = parse_query('cheap(x) :- teams(x, "SA").')
        manager = SessionManager(
            fig1_gt.copy(),
            max_concurrent=1,
            planner=_FixedEstimate({"dear": 9.0, "cheap": 1.0}),
        )
        oracle = PerfectOracle(fig1_gt)
        manager.open_session(dear, oracle, policy=TenantPolicy(priority=1))
        manager.open_session(cheap, oracle)
        assert self._drain_order(manager, 2) == ["dear", "cheap"]

    def test_no_planner_keeps_submission_order(self, fig1_gt):
        dear = parse_query('dear(x) :- teams(x, "EU").')
        cheap = parse_query('cheap(x) :- teams(x, "SA").')
        manager = SessionManager(fig1_gt.copy(), max_concurrent=1)
        oracle = PerfectOracle(fig1_gt)
        manager.open_session(dear, oracle)
        manager.open_session(cheap, oracle)
        assert self._drain_order(manager, 2) == ["dear", "cheap"]

    def test_manager_accepts_planner_by_name(self, fig1_gt):
        manager = SessionManager(fig1_gt.copy(), planner="bandit")
        assert isinstance(manager.planner, BanditPlanner)
