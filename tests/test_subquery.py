"""Unit tests for Q|t embedding and subqueries (Definition 5.3)."""

import pytest

from repro.db.tuples import Fact
from repro.query.ast import Atom, Inequality, QueryError, Var
from repro.query.parser import parse_query
from repro.query.subquery import (
    embed_answer,
    ground_atoms,
    is_subquery,
    split_by_partition,
    subquery,
    unique_variables,
)

Q = parse_query(
    'q(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
    'teams(x, "EU"), d1 != d2.'
)


class TestEmbedAnswer:
    def test_head_contains_all_remaining_variables(self):
        embedded = embed_answer(Q, ("ITA",))
        assert set(embedded.head) == embedded.body_variables()
        assert Var("x") not in embedded.body_variables()

    def test_atoms_grounded(self):
        embedded = embed_answer(Q, ("ITA",))
        assert embedded.atoms[2] == Atom("teams", ("ITA", "EU"))

    def test_inequalities_kept(self):
        embedded = embed_answer(Q, ("ITA",))
        assert Inequality(Var("d1"), Var("d2")) in embedded.inequalities

    def test_mismatched_answer_rejected(self):
        with pytest.raises(QueryError):
            embed_answer(Q, ("ITA", "extra"))

    def test_name_mentions_answer(self):
        assert "ITA" in embed_answer(Q, ("ITA",)).name


class TestSubquery:
    def test_atoms_subset(self):
        sub = subquery(Q, [0, 2])
        assert sub.atoms == (Q.atoms[0], Q.atoms[2])

    def test_head_has_all_variables_no_projection(self):
        sub = subquery(Q, [0])
        assert set(sub.head) == Q.atoms[0].variables()

    def test_inequality_kept_only_if_variables_covered(self):
        both_games = subquery(Q, [0, 1])
        assert both_games.inequalities == (Inequality(Var("d1"), Var("d2")),)
        one_game = subquery(Q, [0])
        assert one_game.inequalities == ()

    def test_empty_selection_rejected(self):
        with pytest.raises(QueryError):
            subquery(Q, [])

    def test_out_of_range_rejected(self):
        with pytest.raises(QueryError):
            subquery(Q, [7])

    def test_is_subquery(self):
        assert is_subquery(subquery(Q, [0, 1]), Q)
        assert is_subquery(subquery(Q, [2]), Q)
        other = parse_query("p(a) :- other(a).")
        assert not is_subquery(other, Q)


class TestSplitByPartition:
    def test_partition_covers_all_atoms(self):
        left, right = split_by_partition(Q, [0])
        assert len(left.atoms) + len(right.atoms) == len(Q.atoms)
        assert set(left.atoms) | set(right.atoms) == set(Q.atoms)

    def test_both_sides_nonempty_required(self):
        with pytest.raises(QueryError):
            split_by_partition(Q, [])
        with pytest.raises(QueryError):
            split_by_partition(Q, [0, 1, 2])


class TestGroundAtoms:
    def test_embedding_creates_ground_atoms(self):
        # teams(ITA, EU) becomes fully ground under x -> ITA.
        embedded = embed_answer(Q, ("ITA",))
        assert ground_atoms(embedded) == [Fact("teams", ("ITA", "EU"))]

    def test_no_ground_atoms(self):
        assert ground_atoms(Q) == []


class TestUniqueVariables:
    def test_counts_body_variables(self):
        assert unique_variables(Q) == {
            Var("x"), Var("y"), Var("z"), Var("d1"), Var("d2"), Var("u1"), Var("u2")
        }

    def test_embedded_loses_head_variable(self):
        embedded = embed_answer(Q, ("ITA",))
        assert Var("x") not in unique_variables(embedded)
        assert len(unique_variables(embedded)) == 6
