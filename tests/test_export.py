"""Tests for experiment result export."""

import csv

import pytest

from repro.experiments.export import (
    export_figures,
    figure_to_csv,
    figure_to_dict,
    load_exported,
)
from repro.experiments.figures import FigureResult


@pytest.fixture
def result():
    r = FigureResult("figX", "Test figure", ("group", "algorithm", "questions"))
    r.rows = [("Q1", "QOCO", 7), ("Q1", "Random", 16)]
    r.notes = ["a note"]
    return r


class TestCsvExport:
    def test_round_trip_rows(self, result, tmp_path):
        figure_to_csv(result, tmp_path / "fig.csv")
        with open(tmp_path / "fig.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["group", "algorithm", "questions"]
        assert rows[1] == ["Q1", "QOCO", "7"]
        assert len(rows) == 3


class TestJsonExport:
    def test_dict_shape(self, result):
        data = figure_to_dict(result)
        assert data["name"] == "figX"
        assert data["rows"] == [["Q1", "QOCO", 7], ["Q1", "Random", 16]]
        assert data["notes"] == ["a note"]

    def test_non_jsonable_values_stringified(self):
        r = FigureResult("f", "t", ("a",))
        r.rows = [((1, 2),)]
        data = figure_to_dict(r)
        assert data["rows"] == [["(1, 2)"]]

    def test_export_and_load(self, result, tmp_path):
        export_figures([result], tmp_path / "out")
        loaded = load_exported(tmp_path / "out")
        assert loaded[0]["name"] == "figX"
        assert (tmp_path / "out" / "figX.csv").exists()


class TestCliExport:
    def test_cli_export_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["dbgroup", "--export", str(tmp_path / "exp")]) == 0
        exported = load_exported(tmp_path / "exp")
        assert exported[0]["name"] == "dbgroup"
        assert "results exported" in capsys.readouterr().out
