"""Unit tests for the imperfect expert."""

import random

import pytest

from repro.db.tuples import fact
from repro.oracle.imperfect import ImperfectOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Var
from repro.query.evaluator import witness_of
from repro.workloads import EX1


class TestErrorRates:
    def test_zero_error_matches_perfect(self, fig1_gt):
        truth = PerfectOracle(fig1_gt)
        expert = ImperfectOracle(fig1_gt, 0.0, random.Random(0))
        for f in list(fig1_gt)[:20]:
            assert expert.verify_fact(f) == truth.verify_fact(f)
        assert expert.verify_answer(EX1, ("GER",)) is True
        assert expert.verify_answer(EX1, ("ESP",)) is False

    def test_full_error_always_flips(self, fig1_gt):
        expert = ImperfectOracle(fig1_gt, 1.0, random.Random(0))
        assert expert.verify_fact(fact("teams", "ESP", "EU")) is False
        assert expert.verify_fact(fact("teams", "BRA", "EU")) is True

    def test_error_rate_validated(self, fig1_gt):
        with pytest.raises(ValueError):
            ImperfectOracle(fig1_gt, 1.5)

    def test_empirical_rate_close_to_p(self, fig1_gt):
        expert = ImperfectOracle(fig1_gt, 0.25, random.Random(7))
        truth = PerfectOracle(fig1_gt)
        f = fact("teams", "ESP", "EU")
        flips = sum(
            expert.verify_fact(f) != truth.verify_fact(f) for _ in range(600)
        )
        assert 0.18 < flips / 600 < 0.32


class TestOpenQuestionCorruption:
    def test_correct_completion_when_not_erring(self, fig1_gt):
        expert = ImperfectOracle(fig1_gt, 0.0, random.Random(0))
        full = expert.complete_assignment(EX1, {Var("x"): "ITA"})
        assert full is not None
        for f in witness_of(EX1, full):
            assert f in fig1_gt

    def test_corrupted_completion_detectable(self, fig1_gt):
        # With p=1 the reply is either withheld or contains a false fact.
        expert = ImperfectOracle(fig1_gt, 1.0, random.Random(3))
        saw_bad = saw_none = False
        for _ in range(30):
            reply = expert.complete_assignment(EX1, {Var("x"): "ITA"})
            if reply is None:
                saw_none = True
                continue
            facts = witness_of(EX1, reply)
            if any(f not in fig1_gt for f in facts):
                saw_bad = True
        assert saw_none or saw_bad

    def test_complete_result_perturbation(self, fig1_gt):
        expert = ImperfectOracle(fig1_gt, 1.0, random.Random(5))
        replies = {expert.complete_result(EX1, [("GER",)]) for _ in range(30)}
        # The correct reply is (ITA,); with p=1 it never appears verbatim.
        assert ("ITA",) not in replies

    def test_complete_result_correct_when_not_erring(self, fig1_gt):
        expert = ImperfectOracle(fig1_gt, 0.0, random.Random(0))
        assert expert.complete_result(EX1, [("GER",)]) == ("ITA",)

    def test_unsatisfiable_stays_silent(self, fig1_gt):
        # Even a lying expert can't invent a witness for (ESP).
        expert = ImperfectOracle(fig1_gt, 1.0, random.Random(4))
        for _ in range(10):
            reply = expert.complete_assignment(EX1, {Var("x"): "ESP"})
            assert reply is None
