"""Unit tests for repro.query.ast."""

import pytest

from repro.db.schema import Schema, SchemaError
from repro.query.ast import Atom, Inequality, QueryError, Var, make_query


X, Y, Z = Var("x"), Var("y"), Var("z")


class TestVar:
    def test_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_ordering(self):
        assert Var("a") < Var("b")

    def test_str(self):
        assert str(Var("d1")) == "d1"


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("games", (X, "Final", Y, X))
        assert atom.variables() == {X, Y}
        assert atom.constants() == {"Final"}

    def test_is_ground(self):
        assert Atom("teams", ("GER", "EU")).is_ground()
        assert not Atom("teams", (X, "EU")).is_ground()

    def test_substitute(self):
        atom = Atom("teams", (X, Y))
        ground = atom.substitute({X: "GER", Y: "EU"})
        assert ground == Atom("teams", ("GER", "EU"))

    def test_substitute_partial(self):
        atom = Atom("teams", (X, Y))
        assert atom.substitute({X: "GER"}) == Atom("teams", ("GER", Y))

    def test_str_quotes_string_constants(self):
        assert str(Atom("teams", (X, "EU"))) == 'teams(x, "EU")'

    def test_str_numbers_unquoted(self):
        assert str(Atom("r", (1992,))) == "r(1992)"


class TestInequality:
    def test_holds_true(self):
        ineq = Inequality(X, Y)
        assert ineq.holds({X: 1, Y: 2}) is True

    def test_holds_false(self):
        assert Inequality(X, Y).holds({X: 1, Y: 1}) is False

    def test_holds_undecided(self):
        assert Inequality(X, Y).holds({X: 1}) is None

    def test_holds_against_constant(self):
        ineq = Inequality(X, "AS")
        assert ineq.holds({X: "EU"}) is True
        assert ineq.holds({X: "AS"}) is False

    def test_ground_inequality(self):
        assert Inequality("a", "b").holds({}) is True
        assert Inequality("a", "a").holds({}) is False

    def test_substitute(self):
        assert Inequality(X, Y).substitute({X: 1}) == Inequality(1, Y)

    def test_variables(self):
        assert Inequality(X, "c").variables() == {X}


class TestQuery:
    def _query(self):
        return make_query(
            head=[X],
            atoms=[Atom("games", (Y, X)), Atom("teams", (X, "EU"))],
            inequalities=[Inequality(X, Y)],
            name="q",
        )

    def test_structure(self):
        q = self._query()
        assert q.head_variables() == (X,)
        assert q.variables() == {X, Y}
        assert q.constants() == {"EU"}
        assert q.body_size == 2

    def test_str_round_trippable_form(self):
        q = self._query()
        assert str(q) == 'q(x) :- games(y, x), teams(x, "EU"), x != y.'

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            make_query(head=[Z], atoms=[Atom("r", (X,))])

    def test_head_constant_allowed(self):
        q = make_query(head=["GER", X], atoms=[Atom("r", (X,))])
        assert q.head == ("GER", X)

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            make_query(head=[], atoms=[])

    def test_inequality_variable_must_occur(self):
        with pytest.raises(QueryError):
            make_query(
                head=[X],
                atoms=[Atom("r", (X,))],
                inequalities=[Inequality(Z, X)],
            )

    def test_substitute_builds_embedded_query(self):
        q = self._query()
        embedded = q.substitute({X: "GER"})
        assert embedded.head == ("GER",)
        assert embedded.atoms[1] == Atom("teams", ("GER", "EU"))
        assert embedded.inequalities[0] == Inequality("GER", Y)

    def test_validate_against_schema(self):
        q = self._query()
        good = Schema.from_dict({"games": ["w", "l"], "teams": ["t", "c"]})
        q.validate(good)  # no raise
        bad = Schema.from_dict({"games": ["w"], "teams": ["t", "c"]})
        with pytest.raises(SchemaError):
            q.validate(bad)

    def test_validate_unknown_relation(self):
        q = self._query()
        with pytest.raises(SchemaError):
            q.validate(Schema.from_dict({"games": ["w", "l"]}))

    def test_with_name(self):
        assert self._query().with_name("other").name == "other"

    def test_constants_include_inequality_constants(self):
        q = make_query(
            head=[X],
            atoms=[Atom("teams", (X, Y))],
            inequalities=[Inequality(Y, "AS")],
        )
        assert "AS" in q.constants()
