"""Unit tests for Algorithm 1 (CrowdRemoveWrongAnswer) and baselines."""

import random

import pytest

from repro.core.deletion import (
    DELETION_STRATEGIES,
    DeletionError,
    QOCODeletion,
    QOCOMinusDeletion,
    RandomDeletion,
    crowd_remove_wrong_answer,
)
from repro.datasets.figure1 import ESP_EU
from repro.db.edits import EditKind
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.evaluator import evaluate
from repro.workloads import EX1


@pytest.fixture
def oracle(fig1_gt):
    return AccountingOracle(PerfectOracle(fig1_gt))


class TestQOCODeletion:
    def test_removes_wrong_answer(self, fig1_dirty, fig1_gt, oracle):
        assert ("ESP",) in evaluate(EX1, fig1_dirty)
        edits = crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
        assert edits  # some deletions happened

    def test_only_false_facts_deleted(self, fig1_dirty, fig1_gt, oracle):
        edits = crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        for edit in edits:
            assert edit.kind is EditKind.DELETE
            assert edit.fact not in fig1_gt  # never deletes a true fact

    def test_true_shared_fact_survives(self, fig1_dirty, oracle):
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert ESP_EU in fig1_dirty  # Teams(ESP, EU) is true, must remain

    def test_first_question_is_most_frequent_fact(self, fig1_dirty, oracle):
        # Teams(ESP, EU) occurs in all six witnesses, so QOCO asks it first
        # (Example 4.6).
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        first = next(
            r for r in oracle.log.records if r.kind is QuestionKind.VERIFY_FACT
        )
        assert first.detail == str(ESP_EU)

    def test_question_count_example_4_6(self, fig1_dirty, oracle):
        # Example 4.6's trace: Teams(ESP,EU)? YES, then two of the four
        # game facts — after which the unique minimal hitting set rule
        # finishes the job.  Exact count depends on tie-breaking, but must
        # stay below the naive five questions.
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert oracle.log.cost_of([QuestionKind.VERIFY_FACT]) <= 4

    def test_unique_hitting_set_needs_no_questions(self, fig1_dirty, oracle):
        # Delete three of Spain's four "wins"; the single remaining
        # witness {game, teams} still needs one question, but once the
        # teams fact is verified the game is a singleton -> inferred.
        games = sorted(
            f
            for f in fig1_dirty.facts("games")
            if f.values[1] == "ESP" and f.values[0] != "11.07.2010"
        )
        for f in games[:2]:
            fig1_dirty.delete(f)
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)

    def test_inferred_facts_remembered(self, fig1_dirty, oracle):
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        # every deleted fact is now known-false to the oracle (asked or inferred)
        for edit in oracle.log.records:
            pass
        known_false = [
            f for f in fig1_dirty.facts("games") if oracle.known_fact_value(f) is False
        ]
        assert known_false == []  # deleted facts are gone from the db

    def test_no_apply_mode(self, fig1_dirty, oracle):
        before = fig1_dirty.copy()
        edits = crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0),
            apply=False,
        )
        assert fig1_dirty == before
        fig1_dirty.apply(edits)
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)


class TestBaselines:
    def test_qoco_minus_removes_answer(self, fig1_dirty, oracle):
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCOMinusDeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)

    def test_random_removes_answer(self, fig1_dirty, oracle):
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, RandomDeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)

    def test_random_verifies_every_witness_fact(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, RandomDeletion(), random.Random(0)
        )
        # 4 games + 1 teams fact = 5 distinct witness facts, all verified.
        assert oracle.log.cost_of([QuestionKind.VERIFY_FACT]) == 5

    def test_ordering_qoco_never_worse(self, fig1_gt):
        """QOCO <= QOCO- <= Random in questions on the Figure 1 instance."""
        from repro.datasets.figure1 import figure1_dirty

        costs = {}
        for name, strategy_cls in DELETION_STRATEGIES.items():
            oracle = AccountingOracle(PerfectOracle(fig1_gt))
            db = figure1_dirty()
            crowd_remove_wrong_answer(
                EX1, db, ("ESP",), oracle, strategy_cls(), random.Random(0)
            )
            costs[name] = oracle.log.cost_of([QuestionKind.VERIFY_FACT])
        assert costs["QOCO"] <= costs["QOCO-"] <= costs["Random"]


class TestEdgeCases:
    def test_answer_with_no_witnesses_is_noop(self, fig1_dirty, oracle):
        edits = crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("XXX",), oracle, QOCODeletion(), random.Random(0)
        )
        assert edits == []

    def test_lying_oracle_raises_deletion_error(self, fig1_dirty, fig1_gt):
        # An oracle that calls every fact true can never destroy a witness:
        # strategies without singleton inference must detect and fail.
        class YesOracle(PerfectOracle):
            def verify_fact(self, fact):
                return True

        oracle = AccountingOracle(YesOracle(fig1_gt))
        with pytest.raises(DeletionError):
            crowd_remove_wrong_answer(
                EX1, fig1_dirty, ("ESP",), oracle, QOCOMinusDeletion(), random.Random(0)
            )

    def test_qoco_singleton_rule_overrides_lying_oracle(self, fig1_dirty, fig1_gt):
        # QOCO proper still terminates under a yes-oracle: once all but one
        # fact of a witness are "verified" true, the singleton rule deletes
        # the last one without asking (Algorithm 1, lines 2-4).
        class YesOracle(PerfectOracle):
            def verify_fact(self, fact):
                return True

        oracle = AccountingOracle(YesOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)

    def test_cached_knowledge_reused_across_calls(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        cost_first = oracle.log.total_cost
        # Re-running on an already-clean instance costs nothing new.
        crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        assert oracle.log.total_cost == cost_first
