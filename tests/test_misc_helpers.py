"""Direct tests for small helpers exercised only indirectly elsewhere."""

import pytest

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.experiments.harness import make_split, make_strategy
from repro.query.ast import Atom, Var, is_var, term_str
from repro.query.evaluator import atom_pattern, negated_match_exists
from repro.query.planner import PlanExplanation


class TestTermHelpers:
    def test_is_var(self):
        assert is_var(Var("x"))
        assert not is_var("constant")
        assert not is_var(42)

    def test_term_str(self):
        assert term_str(Var("x")) == "x"
        assert term_str("EU") == '"EU"'
        assert term_str(1992) == "1992"
        assert term_str(4.5) == "4.5"


class TestAtomPattern:
    def test_mixes_constants_and_bindings(self):
        atom = Atom("r", (Var("x"), "c", Var("y")))
        pattern = atom_pattern(atom, {Var("x"): 1})
        assert pattern == [1, "c", None]

    def test_all_unbound(self):
        atom = Atom("r", (Var("x"), Var("y")))
        assert atom_pattern(atom, {}) == [None, None]


class TestNegatedMatchExists:
    @pytest.fixture
    def db(self):
        schema = Schema.from_dict({"r": ["a", "b"]})
        return Database(schema, [fact("r", 1, 2), fact("r", 3, 3)])

    def test_bound_match(self, db):
        atom = Atom("r", (Var("x"), Var("y")))
        assert negated_match_exists(atom, {Var("x"): 1, Var("y"): 2}, db)
        assert not negated_match_exists(atom, {Var("x"): 1, Var("y"): 9}, db)

    def test_wildcard_match(self, db):
        atom = Atom("r", (Var("x"), Var("w")))
        assert negated_match_exists(atom, {Var("x"): 1}, db)  # w wildcard
        assert not negated_match_exists(atom, {Var("x"): 9}, db)

    def test_repeated_wildcard_consistency(self, db):
        atom = Atom("r", (Var("w"), Var("w")))
        assert negated_match_exists(atom, {}, db)  # r(3, 3) matches
        db.delete(fact("r", 3, 3))
        assert not negated_match_exists(atom, {}, db)


class TestHarnessFactories:
    def test_make_strategy(self):
        assert make_strategy("QOCO").name == "QOCO"
        assert make_strategy("Random").name == "Random"
        with pytest.raises(KeyError):
            make_strategy("nope")

    def test_make_split(self):
        assert make_split("Provenance").name == "Provenance"
        assert make_split("Naive").name == "Naive"
        with pytest.raises(KeyError):
            make_split("nope")


class TestPlanExplanation:
    def test_render(self):
        from repro.query.parser import parse_query

        q = parse_query("q(a) :- r(a, b), s(b).")
        explanation = PlanExplanation(order=(1, 0), estimates=(2.0, 8.0))
        text = explanation.render(q)
        assert "1. s(b)" in text
        assert "est. 2.0" in text
