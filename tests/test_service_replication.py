"""WAL log shipping to a warm follower + kill -9 failover (ISSUE 8).

Two layers of proof:

* **in-process** — a durable primary ships every commit frame to a
  :class:`~repro.service.replication.Follower`; the follower's log is
  byte-identical, promotion recovers the same digest, and replication
  lag is published to telemetry;
* **crash** — a *subprocess* primary (``qoco-serve primary`` on the
  burst dataset) is SIGKILLed mid-commit-burst while real workers and
  tenant threads drive it over sockets.  The warm standby is promoted
  and every session the clients saw acknowledged as
  ``committed + replicated`` must be present after failover: its
  fabricated facts deleted, its tenant charged in the recovered ledger
  — zero acked-but-lost commits.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from pathlib import Path

import pytest

from repro.db.tuples import fact
from repro.durability.codec import database_digest
from repro.oracle.perfect import PerfectOracle
from repro.server.manager import SessionManager
from repro.service.client import ServiceClient, WorkerClient
from repro.service.replication import Follower, ReplicationError
from repro.telemetry import telemetry_session
from service_harness import ServiceHarness

from repro.service.cli import build_workload, burst_query


class TestInProcessShipping:
    def test_follower_log_is_byte_identical_and_promotes_to_same_digest(
        self, tmp_path
    ):
        workload = build_workload("burst", tenants=3)
        manager = SessionManager(
            workload.dirty.copy(), mode="sync", durable_path=tmp_path / "primary"
        )
        with telemetry_session() as (hub, _):
            with ServiceHarness(manager) as harness:
                follower = Follower(
                    tmp_path / "follower", harness.host, harness.port
                )
                tail = threading.Thread(target=follower.run, daemon=True)
                tail.start()
                worker = WorkerClient(
                    harness.host, harness.port, "w0",
                    PerfectOracle(workload.ground_truth),
                )
                worker.start_thread()
                try:
                    with ServiceClient(harness.host, harness.port) as client:
                        docs = [
                            client.clean(
                                burst_query(i), timeout=120.0, replicated=True
                            )
                            for i in range(3)
                        ]
                        primary_digest = client.digest()["digest"]
                        stats = client.stats()
                        assert all(d["state"] == "committed" for d in docs)
                        assert all(d["replicated"] is True for d in docs), docs
                        assert all("seq" in d for d in docs)
                        assert stats["replication"]["acks"], "no follower acks"
                finally:
                    worker.stop()
                    follower.stop()
                    tail.join(timeout=5)
                # the shipped log is the primary's log, byte for byte
                primary_wal = (tmp_path / "primary" / "wal.log").read_bytes()
                follower_wal = (tmp_path / "follower" / "wal.log").read_bytes()
                assert follower_wal == primary_wal
                assert len(primary_wal) > 0
            counters = hub.counters()
            histograms = hub.histograms()
        assert counters["service.follower.frames"] >= 3
        assert "service.replication_lag" in histograms
        # every commit waited for its ack, so lag returned to zero
        assert histograms["service.replication_lag"].minimum == 0

        promoted = Follower(
            tmp_path / "follower", "127.0.0.1", 1,  # never contacted again
        ).promote()
        try:
            assert database_digest(promoted.database) == primary_digest
        finally:
            promoted.close()

    def test_checkpoint_truncation_is_mirrored(self, tmp_path):
        workload = build_workload("burst", tenants=4)
        manager = SessionManager(
            workload.dirty.copy(),
            mode="sync",
            durable_path=tmp_path / "primary",
            checkpoint_every=2,  # force mid-run checkpoints
        )
        with ServiceHarness(manager) as harness:
            follower = Follower(tmp_path / "follower", harness.host, harness.port)
            tail = threading.Thread(target=follower.run, daemon=True)
            tail.start()
            worker = WorkerClient(
                harness.host, harness.port, "w0",
                PerfectOracle(workload.ground_truth),
            )
            worker.start_thread()
            try:
                with ServiceClient(harness.host, harness.port) as client:
                    for i in range(4):
                        doc = client.clean(
                            burst_query(i), timeout=120.0, replicated=True
                        )
                        assert doc["state"] == "committed"
                    primary_digest = client.digest()["digest"]
            finally:
                worker.stop()
                follower.stop()
                tail.join(timeout=5)
            assert follower.checkpoints_fetched >= 2, (
                "the follower never refetched a checkpoint"
            )
        promoted = Follower(tmp_path / "follower", "127.0.0.1", 1).promote()
        try:
            assert database_digest(promoted.database) == primary_digest
        finally:
            promoted.close()


def _wal_frames(store):
    """``(seq, frame_bytes)`` pairs of a store's live WAL suffix."""
    tail = store.read_log()
    data = store.wal_path.read_bytes()[: tail.valid_bytes]
    frames, start = [], 0
    for record, end in zip(tail.records, tail.offsets):
        frames.append((int(record["seq"]), data[start:end]))
        start = end
    return frames


class _DeadConnection:
    """A primary whose stream endpoint is unreachable."""

    def request(self, *args, **kwargs):
        raise OSError("primary unreachable")

    def close(self):
        pass


class TestFollowerReconnect:
    """A reconnect must never delete acked frames from the follower's
    disk: truncation is legal only when a checkpoint subsumes them."""

    def _primary(self, tmp_path):
        workload = build_workload("burst", tenants=2)
        manager = SessionManager(
            workload.dirty.copy(), mode="sync", durable_path=tmp_path / "primary"
        )
        for i in range(2):
            manager.open_session(
                burst_query(i), PerfectOracle(workload.ground_truth)
            )
        manager.run_all()
        return manager

    def test_reconnect_without_new_checkpoint_keeps_acked_wal(self, tmp_path):
        manager = self._primary(tmp_path)
        try:
            store = manager._store
            document = store.read_checkpoint()
            frames = _wal_frames(store)
            assert document["seq"] == 0 and frames, "burst run produced no frames"

            follower = Follower(tmp_path / "follower", "127.0.0.1", 1)
            acks = []
            follower._get_json = lambda path: document
            follower._post_ack = acks.append
            follower._connection = _DeadConnection  # stream never comes up

            # first attach: install the snapshot, then (hand-feed what
            # the stream would have delivered) apply + ack every frame
            with pytest.raises(OSError):
                follower._follow_once()
            for seq, frame in frames:
                follower._apply_frame(seq, frame)
            shipped = (tmp_path / "follower" / "wal.log").read_bytes()
            assert shipped == store.wal_path.read_bytes()
            high_water = frames[-1][0]
            assert follower.last_seq == high_water

            # reconnect while the primary's checkpoint is unchanged:
            # the acked local WAL must survive and the stream must
            # resume at the follower's own high-water mark
            with pytest.raises(OSError):
                follower._follow_once()
            assert (tmp_path / "follower" / "wal.log").read_bytes() == shipped
            assert follower.last_seq == high_water
            assert acks[-1] == high_water
            follower.close()
        finally:
            manager.close()

    def test_new_checkpoint_subsuming_all_frames_truncates_and_resets(self, tmp_path):
        manager = self._primary(tmp_path)
        try:
            store = manager._store
            document = store.read_checkpoint()
            frames = _wal_frames(store)
            follower = Follower(tmp_path / "follower", "127.0.0.1", 1)
            follower._install_checkpoint(document)
            for seq, frame in frames:
                follower._apply_frame(seq, frame)
            top = frames[-1][0]

            covered = dict(document, seq=top + 3)
            follower._install_checkpoint(covered)
            assert (tmp_path / "follower" / "wal.log").read_bytes() == b""
            # the stream resumes exactly at the checkpoint, not beyond
            assert follower.last_seq == top + 3
            assert follower.checkpoint_seq == top + 3
            follower.close()
        finally:
            manager.close()

    def test_checkpoint_behind_applied_frames_keeps_local_log(self, tmp_path):
        manager = self._primary(tmp_path)
        try:
            store = manager._store
            document = store.read_checkpoint()
            frames = _wal_frames(store)
            assert len(frames) >= 2
            follower = Follower(tmp_path / "follower", "127.0.0.1", 1)
            follower._install_checkpoint(document)
            for seq, frame in frames:
                follower._apply_frame(seq, frame)
            before = (tmp_path / "follower" / "wal.log").read_bytes()

            # a checkpoint covering only the first frame: the later
            # acked frames are NOT subsumed, so the log must stay
            behind = dict(document, seq=frames[0][0])
            follower._install_checkpoint(behind)
            assert (tmp_path / "follower" / "wal.log").read_bytes() == before
            assert follower.last_seq == frames[-1][0]
            assert follower.checkpoint_seq == frames[0][0]
            follower.close()
        finally:
            manager.close()

    def test_sequence_gap_raises_instead_of_silent_hole(self, tmp_path):
        manager = self._primary(tmp_path)
        try:
            store = manager._store
            frames = _wal_frames(store)
            assert len(frames) >= 2
            follower = Follower(tmp_path / "follower", "127.0.0.1", 1)
            follower._install_checkpoint(store.read_checkpoint())
            with pytest.raises(ReplicationError, match="sequence gap"):
                follower._apply_frame(frames[1][0], frames[1][1])
            # the contiguous frame still applies cleanly afterwards
            follower._apply_frame(frames[0][0], frames[0][1])
            assert follower.last_seq == frames[0][0]
            follower.close()
        finally:
            manager.close()


@pytest.mark.slow
class TestKillMinusNineFailover:
    TENANTS = 10
    ACKS_BEFORE_KILL = 4

    def _spawn_primary(self, directory: Path) -> tuple[subprocess.Popen, str, int]:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service.cli", "primary",
                "--dataset", "burst", "--tenants", str(self.TENANTS),
                "--dir", str(directory), "--port", "0",
                "--lease-timeout", "10", "--checkpoint-every", "200",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if line.startswith("LISTENING"):
                _, host, port = line.split()
                return process, host, int(port)
            if process.poll() is not None:
                break
        raise AssertionError(
            f"primary did not come up: {process.stdout.read() if process.stdout else ''}"
        )

    def test_promote_follower_after_kill9_zero_acked_commits_lost(self, tmp_path):
        workload = build_workload("burst", tenants=self.TENANTS)
        primary, host, port = self._spawn_primary(tmp_path / "primary")
        killed = threading.Event()
        try:
            follower = Follower(tmp_path / "follower", host, port)
            with ServiceHarness(None, follower=follower) as standby:
                with ServiceClient(standby.host, standby.port) as probe:
                    assert probe.healthz()["role"] == "standby"

                workers = [
                    WorkerClient(
                        host, port, f"w{i}", PerfectOracle(workload.ground_truth)
                    )
                    for i in range(3)
                ]
                worker_threads = [w.start_thread() for w in workers]

                def drive(i: int):
                    client = ServiceClient(host, port, tenant=f"t{i}")
                    try:
                        sid = client.open_when_admitted(
                            burst_query(i), deadline=60.0
                        )
                        doc = client.wait(sid, timeout=60.0, replicated=True)
                        if doc.get("state") == "committed" and doc.get("replicated"):
                            return ("acked", i, doc)
                        return ("unacked", i, doc)
                    except Exception as error:
                        return ("crashed", i, repr(error))
                    finally:
                        client.close()

                results = []
                with ThreadPoolExecutor(max_workers=self.TENANTS) as pool:
                    futures = [
                        pool.submit(drive, i) for i in range(self.TENANTS)
                    ]
                    acked_seen = 0
                    for future in as_completed(futures):
                        outcome = future.result()
                        results.append(outcome)
                        if outcome[0] == "acked":
                            acked_seen += 1
                        if (
                            acked_seen >= self.ACKS_BEFORE_KILL
                            and not killed.is_set()
                        ):
                            # mid-burst: the other tenants are still in
                            # flight when the primary dies without warning
                            os.kill(primary.pid, signal.SIGKILL)
                            killed.set()
                for worker in workers:
                    worker.stop()

                assert killed.is_set(), "primary was never killed mid-burst"
                acked = [r for r in results if r[0] == "acked"]
                assert len(acked) >= self.ACKS_BEFORE_KILL

                # ---- failover: promote the warm standby ------------------
                with ServiceClient(standby.host, standby.port) as client:
                    promoted = client.promote()
                    assert client.healthz()["role"] == "primary"
                    assert promoted["frames_applied"] >= len(acked)
                    digest_doc = client.digest()

                manager = standby.service.manager
                assert manager is not None
                ledger = manager.ledger.snapshot()
                for _, i, doc in acked:
                    # the session's certified edits survived the crash:
                    # tenant i's fabricated facts are gone...
                    for j in (0, 1):
                        bogus = fact("r", f"t{i}", f"bogus{j}")
                        assert bogus not in manager.database, (
                            f"acked commit of tenant t{i} lost {bogus} "
                            "after failover"
                        )
                    # ...its true facts are intact...
                    assert fact("r", f"t{i}", "v0") in manager.database
                    # ...and its paid crowd answers are in the ledger
                    assert ledger.get(f"t{i}", 0) >= doc["cost"] > 0

                # the promoted node serves reads with a digest consistent
                # with its own recovered database (ledger replay included)
                assert digest_doc["digest"] == database_digest(manager.database)

                # the new primary accepts fresh sessions: cleaning a tenant
                # that never finished before the crash still works
                unfinished = [i for s, i, _ in results if s != "acked"]
                if unfinished:
                    target = unfinished[0]
                    new_worker = WorkerClient(
                        standby.host, standby.port, "w-post",
                        PerfectOracle(workload.ground_truth),
                    )
                    new_worker.start_thread()
                    try:
                        with ServiceClient(standby.host, standby.port) as client:
                            doc = client.clean(burst_query(target), timeout=120.0)
                            assert doc["state"] == "committed", doc
                    finally:
                        new_worker.stop()
                for thread in worker_threads:
                    thread.join(timeout=3)
        finally:
            if primary.poll() is None:
                primary.kill()
            primary.wait(timeout=10)
            if primary.stdout is not None:
                primary.stdout.close()
