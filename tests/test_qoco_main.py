"""Tests for Algorithm 3 — the main iterative cleaning loop."""



from repro.core.qoco import QOCO, QOCOConfig
from repro.core.deletion import QOCOMinusDeletion
from repro.core.split import MinCutSplit
from repro.datasets.figure1 import ITA_EU
from repro.oracle.base import AccountingOracle
from repro.oracle.enumeration import Chao92Estimator
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate
from repro.workloads import EX1, EX2


class TestConvergence:
    def test_ex1_converges_to_ground_truth_result(self, fig1_dirty, fig1_gt):
        system = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)))
        report = system.clean(EX1)
        assert report.converged
        assert evaluate(EX1, fig1_dirty) == evaluate(EX1, fig1_gt)
        assert report.wrong_answers_removed == [("ESP",)]
        assert ("ITA",) in report.missing_answers_added

    def test_ex2_converges_with_side_effects(self, fig1_dirty, fig1_gt):
        # Example 6.1: inserting Teams(ITA, EU) for Pirlo surfaces the
        # wrong answer (Totti); the loop must clean that up too.
        system = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)))
        report = system.clean(EX2)
        assert report.converged
        assert evaluate(EX2, fig1_dirty) == evaluate(EX2, fig1_gt)
        assert ("Andrea Pirlo",) in report.missing_answers_added
        assert ("Francesco Totti",) in report.wrong_answers_removed
        assert report.iterations >= 2  # the side effect forces a second pass

    def test_totti_side_effect_sequence(self, fig1_dirty, fig1_gt):
        report = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX2)
        assert ITA_EU in fig1_dirty  # true tuple inserted
        from repro.db.tuples import fact

        assert fact("goals", "Francesco Totti", "09.07.2006") not in fig1_dirty

    def test_clean_database_needs_no_edits(self, fig1_gt):
        db = fig1_gt.copy()
        report = QOCO(db, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX1)
        assert report.edits == []
        assert report.converged
        assert db == fig1_gt

    def test_edits_move_towards_ground_truth(self, fig1_dirty, fig1_gt):
        # Proposition 3.3 aggregated: total distance never increases.
        before = fig1_dirty.distance(fig1_gt)
        QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX1)
        after = fig1_dirty.distance(fig1_gt)
        assert after <= before

    def test_cleaning_both_queries_sequentially(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        system = QOCO(fig1_dirty, oracle)
        system.clean(EX1)
        system.clean(EX2)
        assert evaluate(EX1, fig1_dirty) == evaluate(EX1, fig1_gt)
        assert evaluate(EX2, fig1_dirty) == evaluate(EX2, fig1_gt)


class TestConfig:
    def test_alternative_strategies(self, fig1_dirty, fig1_gt):
        config = QOCOConfig(
            deletion_strategy=QOCOMinusDeletion(),
            split_strategy=MinCutSplit(),
            seed=3,
        )
        report = QOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), config
        ).clean(EX1)
        assert report.converged
        assert evaluate(EX1, fig1_dirty) == evaluate(EX1, fig1_gt)

    def test_chao_estimator_still_converges(self, fig1_dirty, fig1_gt):
        config = QOCOConfig(estimator_factory=lambda: Chao92Estimator(patience=2))
        report = QOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), config
        ).clean(EX1)
        assert evaluate(EX1, fig1_dirty) == evaluate(EX1, fig1_gt)

    def test_iteration_bound_respected(self, fig1_dirty, fig1_gt):
        config = QOCOConfig(max_iterations=1)
        report = QOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), config
        ).clean(EX2)
        assert report.iterations == 1
        # EX2 needs 2 iterations (Totti side effect) -> flagged unconverged.
        assert not report.converged

    def test_plain_oracle_wrapped_automatically(self, fig1_dirty, fig1_gt):
        system = QOCO(fig1_dirty, PerfectOracle(fig1_gt))
        assert isinstance(system.oracle, AccountingOracle)

    def test_minimize_query_option(self, fig1_dirty, fig1_gt):
        from repro.query.parser import parse_query
        from repro.query.evaluator import evaluate

        # EX1 with a redundant third games atom — the core drops it and
        # the run cleans the same result with smaller witnesses.
        bloated = parse_query(
            'q(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
            'games(d3, x, w, "Final", u3), teams(x, "EU"), d1 != d2.'
        )
        config = QOCOConfig(minimize_query=True, seed=0)
        report = QOCO(
            fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt)), config
        ).clean(bloated)
        assert report.converged
        assert evaluate(bloated, fig1_dirty) == evaluate(bloated, fig1_gt)


class TestReport:
    def test_summary_mentions_counts(self, fig1_dirty, fig1_gt):
        report = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX1)
        text = report.summary()
        assert "wrong removed" in text
        assert "missing added" in text

    def test_edit_partition(self, fig1_dirty, fig1_gt):
        report = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX1)
        assert set(report.deletions) | set(report.insertions) == set(report.edits)

    def test_log_attached(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        report = QOCO(fig1_dirty, oracle).clean(EX1)
        assert report.log is oracle.log
        assert report.total_cost == oracle.log.total_cost
