"""Tests for the NP-hardness reduction constructions (Thms 4.2 / 5.2).

These validate the *correspondences the proofs claim*, by running the
actual cleaning machinery over the constructed instances.
"""

import random

import pytest

from repro.core.deletion import QOCODeletion, crowd_remove_wrong_answer
from repro.hardness.reductions import (
    D_CONST,
    element_fact,
    hitting_set_to_deletion,
    one3sat_to_insertion,
    witness_to_sat_assignment,
)
from repro.hardness.sat import is_satisfying, solve
from repro.hitting.hitting_set import exact_minimum_hitting_set, is_hitting_set
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import Evaluator, evaluate, valid_assignments


class TestHittingSetReduction:
    UNIVERSE = ["u1", "u2", "u3", "u4"]
    SETS = [frozenset({"u2", "u3", "u4"}), frozenset({"u1", "u2"})]

    def test_d_is_wrong_answer(self):
        inst = hitting_set_to_deletion(self.UNIVERSE, self.SETS)
        assert evaluate(inst.query, inst.dirty) == {(D_CONST,)}
        assert evaluate(inst.query, inst.ground_truth) == set()

    def test_one_witness_per_set(self):
        inst = hitting_set_to_deletion(self.UNIVERSE, self.SETS)
        witnesses = Evaluator(inst.query, inst.dirty).witnesses((D_CONST,))
        assert len(witnesses) == len(self.SETS)

    def test_witnesses_encode_characteristic_vectors(self):
        inst = hitting_set_to_deletion(self.UNIVERSE, self.SETS)
        witnesses = Evaluator(inst.query, inst.dirty).witnesses((D_CONST,))
        encoded = set()
        for witness in witnesses:
            elements = frozenset(
                f.values[0]
                for f in witness
                if f.relation != "r" and f.values[0] != D_CONST
            )
            encoded.add(elements)
        assert encoded == set(self.SETS)

    def test_deletion_edits_form_hitting_set(self):
        inst = hitting_set_to_deletion(self.UNIVERSE, self.SETS)
        oracle = AccountingOracle(PerfectOracle(inst.ground_truth))
        edits = crowd_remove_wrong_answer(
            inst.query, inst.dirty, (D_CONST,), oracle,
            QOCODeletion(), random.Random(0),
        )
        hit = {
            edit.fact.values[0]
            for edit in edits
            if edit.fact.relation != "r"
        }
        # facts of the wide relation may also be deleted; the unary ones
        # must hit every set.
        wide_deleted = [e for e in edits if e.fact.relation == "r"]
        assert is_hitting_set(hit, self.SETS) or len(wide_deleted) == len(self.SETS)
        assert (D_CONST,) not in evaluate(inst.query, inst.dirty)

    def test_hitting_set_translates_to_deletions(self):
        inst = hitting_set_to_deletion(self.UNIVERSE, self.SETS)
        optimum = exact_minimum_hitting_set(self.SETS)
        db = inst.dirty.copy()
        for element in optimum:
            index = self.UNIVERSE.index(element)
            db.delete(element_fact(index, element))
        assert (D_CONST,) not in evaluate(inst.query, db)

    def test_validation(self):
        with pytest.raises(ValueError):
            hitting_set_to_deletion([], [])
        with pytest.raises(ValueError):
            hitting_set_to_deletion(["a"], [frozenset()])
        with pytest.raises(ValueError):
            hitting_set_to_deletion(["a"], [frozenset({"zzz"})])
        with pytest.raises(ValueError):
            hitting_set_to_deletion(["a", "a"], [frozenset({"a"})])


class TestOne3SatReduction:
    SAT = [(1, 2, 3), (-1, -2, -3), (1, -2, 3)]
    UNSAT = [(1,), (-1,)]

    def test_dirty_is_empty(self):
        inst = one3sat_to_insertion(self.SAT)
        assert len(inst.dirty) == 0
        assert evaluate(inst.query, inst.dirty) == set()

    def test_d_missing_iff_satisfiable(self):
        sat_inst = one3sat_to_insertion(self.SAT)
        assert (D_CONST,) in evaluate(sat_inst.query, sat_inst.ground_truth)
        unsat_inst = one3sat_to_insertion(self.UNSAT)
        assert evaluate(unsat_inst.query, unsat_inst.ground_truth) == set()

    def test_witnesses_are_satisfying_assignments(self):
        inst = one3sat_to_insertion(self.SAT)
        for assignment in valid_assignments(inst.query, inst.ground_truth):
            named = {str(var): value for var, value in assignment.items()}
            named.pop("x", None)
            sat_assignment = witness_to_sat_assignment(self.SAT, named)
            assert is_satisfying(self.SAT, sat_assignment)

    def test_solver_solution_is_a_witness(self):
        inst = one3sat_to_insertion(self.SAT)
        model = solve(self.SAT)
        assert model is not None
        # Build the facts the model implies and check they're in D_G.
        from repro.hardness.sat import clause_variables
        from repro.db.tuples import Fact

        for i, clause in enumerate(self.SAT):
            values = tuple(int(model[v]) for v in clause_variables(clause))
            assert Fact(f"c{i + 1}", (D_CONST,) + values) in inst.ground_truth

    def test_insertion_algorithm_solves_sat(self):
        # Running Algorithm 2 on the reduction instance effectively asks
        # the oracle for a satisfying assignment.
        from repro.core.insertion import crowd_add_missing_answer
        from repro.core.split import ProvenanceSplit

        inst = one3sat_to_insertion(self.SAT)
        oracle = AccountingOracle(PerfectOracle(inst.ground_truth))
        db = inst.dirty.copy()
        crowd_add_missing_answer(
            inst.query, db, (D_CONST,), oracle, ProvenanceSplit(), random.Random(0)
        )
        assert (D_CONST,) in evaluate(inst.query, db)
        # Decode the inserted facts into a satisfying assignment.
        assignment = next(valid_assignments(inst.query, db))
        named = {str(var): value for var, value in assignment.items()}
        named.pop("x")
        assert is_satisfying(self.SAT, witness_to_sat_assignment(self.SAT, named))

    def test_validation(self):
        with pytest.raises(ValueError):
            one3sat_to_insertion([])
