"""The paper's worked examples, verified end to end on Figure 1 data.

Each test class follows one numbered example of the paper; together they
pin the reproduction to the paper's own narrative.
"""

import random


from repro.core.deletion import QOCODeletion, crowd_remove_wrong_answer
from repro.core.insertion import crowd_add_missing_answer
from repro.core.qoco import QOCO
from repro.core.split import ProvenanceSplit
from repro.datasets.figure1 import ESP_EU, ITA_EU
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.ast import Var
from repro.query.evaluator import (
    Evaluator,
    answer_to_partial,
    evaluate,
    is_satisfiable,
    valid_assignments,
)
from repro.workloads import EX1, EX2


class TestExample21And22:
    """Examples 2.1/2.2: Q1's answers and assignments."""

    def test_q1_d_result(self, fig1_dirty):
        assert evaluate(EX1, fig1_dirty) == {("GER",), ("ESP",)}

    def test_ger_has_two_assignments(self, fig1_dirty):
        partial = answer_to_partial(EX1, ("GER",))
        assignments = list(valid_assignments(EX1, fig1_dirty, partial))
        # d1/d2 over the 1990 and 2014 wins, both orders.
        assert len(assignments) == 2

    def test_equal_dates_invalid(self, fig1_dirty):
        # The assignment with d1 = d2 = 13.07.2014 violates d1 != d2.
        partial = {
            Var("x"): "GER",
            Var("d1"): "13.07.2014",
            Var("d2"): "13.07.2014",
        }
        assert not is_satisfiable(EX1, fig1_dirty, partial)

    def test_ita_fra_unsatisfiable(self, fig1_dirty):
        # β = {x -> ITA, y -> FRA} is non-satisfiable w.r.t. D.
        partial = {Var("x"): "ITA", Var("y"): "FRA"}
        assert not is_satisfiable(EX1, fig1_dirty, partial)


class TestExample46:
    """Example 4.6: removing the wrong answer (ESP)."""

    def test_six_witnesses_of_three_facts(self, fig1_dirty):
        witnesses = Evaluator(EX1, fig1_dirty).witnesses(("ESP",))
        assert len(witnesses) == 6
        assert all(len(w) == 3 for w in witnesses)
        assert all(ESP_EU in w for w in witnesses)

    def test_trace(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        edits = crowd_remove_wrong_answer(
            EX1, fig1_dirty, ("ESP",), oracle, QOCODeletion(), random.Random(0)
        )
        # The three false game facts are deleted; the true ones survive.
        deleted = {e.fact for e in edits}
        assert deleted == {
            fact("games", "12.07.1998", "ESP", "NED", "Final", "4:2"),
            fact("games", "17.07.1994", "ESP", "NED", "Final", "3:1"),
            fact("games", "25.06.1978", "ESP", "NED", "Final", "1:0"),
        }
        # Fewer questions than the naive 5 (Thm 4.5 closed the tail).
        questions = oracle.log.cost_of([QuestionKind.VERIFY_FACT])
        assert questions <= 4
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
        # The true 2010 win and the Teams fact are intact.
        assert fact("games", "11.07.2010", "ESP", "NED", "Final", "1:0") in fig1_dirty
        assert ESP_EU in fig1_dirty


class TestExample54:
    """Example 5.4: adding the missing answer (Pirlo) via query split."""

    def test_pirlo_missing_because_of_teams_tuple(self, fig1_dirty, fig1_gt):
        assert ("Andrea Pirlo",) not in evaluate(EX2, fig1_dirty)
        assert ("Andrea Pirlo",) in evaluate(EX2, fig1_gt)
        assert ITA_EU not in fig1_dirty

    def test_split_isolates_missing_teams_tuple(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        edits = crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            ProvenanceSplit(), random.Random(0),
        )
        # QOCO concludes only Teams(ITA, EU) needs inserting.
        assert [e.fact for e in edits] == [ITA_EU]
        assert ("Andrea Pirlo",) in evaluate(EX2, fig1_dirty)

    def test_cheaper_than_naive_six_variables(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            ProvenanceSplit(), random.Random(0),
        )
        assert oracle.log.total_cost < 6


class TestExample61:
    """Example 6.1: fixing one error type surfaces the other."""

    def test_totti_becomes_wrong_after_insertion(self, fig1_dirty):
        fig1_dirty.insert(ITA_EU)
        assert ("Francesco Totti",) in evaluate(EX2, fig1_dirty)

    def test_iterative_loop_cleans_both(self, fig1_dirty, fig1_gt):
        report = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX2)
        assert evaluate(EX2, fig1_dirty) == evaluate(EX2, fig1_gt)
        assert ("Francesco Totti",) in report.wrong_answers_removed
        assert fact("goals", "Francesco Totti", "09.07.2006") not in fig1_dirty


class TestPropositions:
    """Propositions 3.3/3.4 on the example instance."""

    def test_every_oracle_edit_shrinks_distance(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        distances = [fig1_dirty.distance(fig1_gt)]
        report = QOCO(fig1_dirty, oracle).clean(EX1)
        for edit in report.edits:
            pass  # edits were applied during cleaning
        distances.append(fig1_dirty.distance(fig1_gt))
        assert distances[-1] <= distances[0]

    def test_convergence_in_finite_questions(self, fig1_dirty, fig1_gt):
        report = QOCO(fig1_dirty, AccountingOracle(PerfectOracle(fig1_gt))).clean(EX1)
        assert report.converged
        assert report.log.question_count < 100
