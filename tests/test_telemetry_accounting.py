"""The §7 accounting bridge: :class:`AccountingOracle`'s interaction log
and the ``oracle.*`` telemetry counter stream must agree *exactly* —
per-kind question counts, per-kind costs, total cost, and event order —
for deletion sessions, insertion sessions, and parallel-round sessions."""

from __future__ import annotations

import random

from repro.core.deletion import crowd_remove_wrong_answer
from repro.core.insertion import crowd_add_missing_answer
from repro.core.parallel import ParallelQOCO
from repro.core.qoco import QOCO, QOCOConfig
from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.evaluator import evaluate
from repro.telemetry import telemetry_session
from repro.workloads import EX1


def assert_log_matches_counters(log, hub, sink) -> None:
    """Every invariant tying the interaction log to the counter stream."""
    for kind in QuestionKind:
        assert hub.counter(f"oracle.questions.{kind.value}") == log.count_of(
            [kind]
        ), f"question count mismatch for {kind.value}"
        assert hub.counter(f"oracle.cost.{kind.value}") == log.cost_of(
            [kind]
        ), f"cost mismatch for {kind.value}"
    assert hub.counter("oracle.cost.total") == log.total_cost
    # the ordered event stream mirrors the log record-for-record
    questions = [
        name.removeprefix("oracle.questions.")
        for name, _, _ in sink.counter_events
        if name.startswith("oracle.questions.")
    ]
    assert questions == [record.kind.value for record in log.records]
    costs = [
        delta
        for name, delta, _ in sink.counter_events
        if name.startswith("oracle.cost.") and name != "oracle.cost.total"
    ]
    assert costs == [record.cost for record in log.records]


class TestDeletionAccounting:
    def test_counts_match_for_deletion_session(self, fig1_dirty, fig1_oracle):
        wrong = sorted(
            evaluate(EX1, fig1_dirty) - evaluate(EX1, figure1_ground_truth())
        )
        assert wrong
        with telemetry_session() as (hub, sink):
            for answer in wrong:
                crowd_remove_wrong_answer(
                    EX1, fig1_dirty, answer, fig1_oracle, rng=random.Random(1)
                )
            assert hub.counter("oracle.questions.verify_fact") > 0
            assert_log_matches_counters(fig1_oracle.log, hub, sink)


class TestInsertionAccounting:
    def test_counts_match_for_insertion_session(self, fig1_dirty, fig1_oracle):
        missing = sorted(
            evaluate(EX1, figure1_ground_truth()) - evaluate(EX1, fig1_dirty)
        )
        assert missing
        with telemetry_session() as (hub, sink):
            for answer in missing:
                crowd_add_missing_answer(
                    EX1, fig1_dirty, answer, fig1_oracle, rng=random.Random(1)
                )
            assert_log_matches_counters(fig1_oracle.log, hub, sink)


class TestFullSessionAccounting:
    def test_counts_match_for_sequential_clean(self):
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        with telemetry_session() as (hub, sink):
            report = QOCO(figure1_dirty(), oracle, QOCOConfig(seed=3)).clean(EX1)
            assert report.converged
            assert_log_matches_counters(report.log, hub, sink)

    def test_counts_match_for_parallel_rounds(self):
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        with telemetry_session() as (hub, sink):
            report = ParallelQOCO(figure1_dirty(), oracle, seed=3).clean(EX1)
            assert report.converged
            assert report.rounds > 0
            assert_log_matches_counters(report.log, hub, sink)
            # a parallel round never carries more questions than its width:
            # total logged questions ≤ Σ per-round widths (remember-steps
            # and cached replies are free)
            width = hub.histogram("parallel.round_width")
            assert width.count == report.rounds

    def test_cached_questions_cost_nothing_in_both_ledgers(self, fig1_oracle):
        from repro.db.tuples import fact

        probe = fact("teams", "Germany", "EU")
        with telemetry_session() as (hub, sink):
            fig1_oracle.verify_fact(probe)
            fig1_oracle.verify_fact(probe)  # cached: no log entry, no counter
            assert fig1_oracle.log.question_count == 1
            assert hub.counter("oracle.questions.verify_fact") == 1
            assert hub.counter("oracle.cache_hits") == 1
            assert_log_matches_counters(fig1_oracle.log, hub, sink)
