"""Public-API surface tests: exports exist, are documented, and import.

Deliverable guard: every public item (``__all__`` across packages) must
resolve and carry a docstring.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.db",
    "repro.query",
    "repro.provenance",
    "repro.hitting",
    "repro.mincut",
    "repro.oracle",
    "repro.core",
    "repro.aggregates",
    "repro.views",
    "repro.crowdsim",
    "repro.dispatch",
    "repro.hardness",
    "repro.datasets",
    "repro.server",
    "repro.telemetry",
    "repro.workloads",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports_and_has_doc(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{package}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_star_import_is_clean():
    namespace = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "QOCO" in namespace
    assert "parse_query" in namespace


def test_readme_quickstart_runs():
    """The README's quickstart snippet must actually work."""
    import repro.api as qoco
    from repro import PerfectOracle, evaluate, parse_query
    from repro.datasets import figure1_dirty, figure1_ground_truth

    dirty = figure1_dirty()
    ground_truth = figure1_ground_truth()
    query = parse_query(
        'q(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
        'teams(x, "EU"), d1 != d2.'
    )
    assert evaluate(query, dirty) == {("GER",), ("ESP",)}
    report = qoco.clean(dirty, query, PerfectOracle(ground_truth))
    assert evaluate(query, dirty) == {("GER",), ("ITA",)}
    assert "wrong removed" in report.summary()
