"""Unit tests for the majority-vote aggregator black-box."""

import pytest

from repro.oracle.aggregator import FirstAnswer, MajorityVote


def make_asker(answers):
    """An AskMember that replays scripted per-call answers."""
    calls = []

    def ask(member_index):
        calls.append(member_index)
        return answers[len(calls) - 1]

    return ask, calls


class TestMajorityVote:
    def test_early_stop_on_agreement(self):
        ask, calls = make_asker([True, True, False])
        decision, collected = MajorityVote(3).decide(ask, 3)
        assert decision is True
        assert collected == 2  # third answer never needed

    def test_full_sample_on_disagreement(self):
        ask, calls = make_asker([True, False, False])
        decision, collected = MajorityVote(3).decide(ask, 3)
        assert decision is False
        assert collected == 3

    def test_no_early_stop_mode(self):
        ask, calls = make_asker([True, True, False])
        decision, collected = MajorityVote(3, early_stop=False).decide(ask, 3)
        assert decision is True
        assert collected == 3

    def test_sample_size_one(self):
        ask, _ = make_asker([False])
        decision, collected = MajorityVote(1).decide(ask, 5)
        assert decision is False
        assert collected == 1

    def test_round_robin_when_fewer_members(self):
        ask, calls = make_asker([True, False, True])
        MajorityVote(3).decide(ask, 2)
        assert calls == [0, 1, 0]  # wraps around the two members

    def test_sample_size_validated(self):
        with pytest.raises(ValueError):
            MajorityVote(0)

    def test_empty_crowd_rejected(self):
        ask, _ = make_asker([True])
        with pytest.raises(ValueError):
            MajorityVote(3).decide(ask, 0)

    def test_five_member_majority(self):
        ask, calls = make_asker([True, False, True, False, True])
        decision, collected = MajorityVote(5).decide(ask, 5)
        assert decision is True
        assert collected == 5

    def test_five_member_early_stop(self):
        ask, calls = make_asker([True, True, True])
        decision, collected = MajorityVote(5).decide(ask, 5)
        assert decision is True
        assert collected == 3


class TestFirstAnswer:
    def test_trusts_single_member(self):
        ask, calls = make_asker([False])
        decision, collected = FirstAnswer().decide(ask, 3)
        assert decision is False
        assert collected == 1

    def test_empty_crowd_rejected(self):
        ask, _ = make_asker([True])
        with pytest.raises(ValueError):
            FirstAnswer().decide(ask, 0)
