"""End-to-end tests for `ShardedQOCO` (inline and process modes).

The load-bearing property throughout: on a shardable query, the merged
sharded clean is **bit-identical** (``state_digest``) to a
single-process QOCO clean of the same dirty database, for any shard
count, because every witness is confined to one shard and all oracle
completions are answered by the parent.
"""

from __future__ import annotations

import pytest

from repro.core.qoco import QOCO, QOCOConfig
from repro.datasets.worldcup import (
    WorldCupConfig,
    inject_fake_champions,
    worldcup_database,
    worldcup_partition_spec,
    worldcup_years,
)
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.dispatch.dedup import AnswerBoard
from repro.oracle.perfect import PerfectOracle
from repro.query.parser import parse_query
from repro.shard import PartitionSpec, KeySpec, ShardedQOCO, ShardingError

Q3 = parse_query(
    'q3(x) :- games(d1, x, y, s1, u1), stages(s1, "KO"), teams(x, c), c != "AS".'
)

SCHEMA = Schema(
    [
        RelationSchema("m", ("k", "x")),
        RelationSchema("lab", ("x", "y")),
    ]
)
SPEC = PartitionSpec((KeySpec("m", 0),))
QP = parse_query("qp(k, x) :- m(k, x), lab(x, y).")


def _db(m_rows, lab_rows):
    return Database(
        SCHEMA,
        [Fact("m", tuple(row)) for row in m_rows]
        + [Fact("lab", tuple(row)) for row in lab_rows],
    )


def _reference_clean(dirty, truth, query, **overrides):
    """Single-process QOCO applied back onto a copy of *dirty*."""
    merged = dirty.copy()
    fork = merged.fork()
    report = QOCO(fork, PerfectOracle(truth), **overrides).clean(query)
    merged.apply_exported(fork.export_edit_log())
    return merged, report


@pytest.fixture(scope="module")
def worldcup_pair():
    config = WorldCupConfig()
    truth = worldcup_database(config)
    dirty = truth.copy()
    inject_fake_champions(dirty, worldcup_years(config)[:6])
    return truth, dirty


class TestInlineMode:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_digest_matches_unsharded(self, worldcup_pair, shards):
        truth, dirty = worldcup_pair
        reference, ref_report = _reference_clean(dirty, truth, Q3)
        merged = dirty.copy()
        sharded = ShardedQOCO(
            merged,
            PerfectOracle(truth),
            spec=worldcup_partition_spec(),
            shards=shards,
            mode="inline",
            verify_merge=True,
        )
        report = sharded.clean(Q3)
        assert merged.state_digest() == reference.state_digest()
        assert report.converged
        assert report.edits_applied == len(ref_report.edits)
        wrong = sum(o.wrong_answers_removed for o in report.outcomes)
        assert wrong == len(ref_report.wrong_answers_removed)

    def test_insertion_across_shards(self):
        # ground truth answers missing from two different shards — each
        # must be repaired in its home shard and survive the merge
        truth = _db([(k, f"x{k}") for k in range(8)], [(f"x{k}", "y") for k in range(8)])
        dirty = _db(
            [(k, f"x{k}") for k in range(8) if k not in (2, 5)],
            [(f"x{k}", "y") for k in range(8)],
        )
        merged = dirty.copy()
        report = ShardedQOCO(
            merged,
            PerfectOracle(truth),
            spec=SPEC,
            shards=4,
            mode="inline",
            verify_merge=True,
        ).clean(QP)
        assert merged.state_digest() == truth.state_digest()
        assert sum(o.missing_answers_added for o in report.outcomes) == 2

    def test_mixed_wrong_and_missing(self):
        truth = _db([(k, f"x{k}") for k in range(6)], [(f"x{k}", "y") for k in range(6)])
        dirty = _db(
            [(k, f"x{k}") for k in range(6) if k != 3] + [(7, "x0"), (9, "x1")],
            [(f"x{k}", "y") for k in range(6)],
        )
        reference, _ = _reference_clean(dirty, truth, QP)
        merged = dirty.copy()
        ShardedQOCO(
            merged, PerfectOracle(truth), spec=SPEC, shards=3, mode="inline"
        ).clean(QP)
        assert merged.state_digest() == reference.state_digest()
        assert merged.state_digest() == truth.state_digest()

    def test_replicated_only_query_runs_on_one_shard(self):
        truth = _db([(1, "x1")], [("x1", "y"), ("x2", "y")])
        dirty = _db([(1, "x1")], [("x1", "y"), ("x2", "y"), ("bad", "y")])
        q = parse_query("q(x) :- lab(x, y).")
        merged = dirty.copy()
        report = ShardedQOCO(
            merged, PerfectOracle(truth), spec=SPEC, shards=4, mode="inline"
        ).clean(q)
        assert merged.state_digest() == truth.state_digest()
        # only shard 0 ran
        assert {o.shard for o in report.outcomes} == {0}

    def test_clean_database_is_a_noop(self, worldcup_pair):
        truth, _ = worldcup_pair
        merged = truth.copy()
        report = ShardedQOCO(
            merged, PerfectOracle(truth), spec=worldcup_partition_spec(),
            shards=2, mode="inline",
        ).clean(Q3)
        assert report.edits_applied == 0
        assert merged.state_digest() == truth.state_digest()

    def test_unshardable_query_rejected(self):
        spec = PartitionSpec((KeySpec("m", 0), KeySpec("lab", 0)))
        with pytest.raises(ShardingError, match="not shardable"):
            ShardedQOCO(
                _db([], []), PerfectOracle(_db([], [])), spec=spec,
                shards=2, mode="inline",
            ).clean(QP)

    def test_invalid_construction(self):
        db = _db([], [])
        with pytest.raises(ShardingError, match="at least one shard"):
            ShardedQOCO(db, PerfectOracle(db), spec=SPEC, shards=0)
        with pytest.raises(ShardingError, match="mode"):
            ShardedQOCO(db, PerfectOracle(db), spec=SPEC, mode="thread")
        with pytest.raises(ShardingError, match="oracle_latency"):
            ShardedQOCO(db, PerfectOracle(db), spec=SPEC, oracle_latency=-1.0)

    def test_oracle_latency_is_digest_neutral(self):
        # the simulated crowd delay slows the clean but must not change
        # a single question, edit, or the merged digest
        truth = _db([(k, f"x{k}") for k in range(6)], [(f"x{k}", "y") for k in range(6)])
        dirty = _db(
            [(k, f"x{k}") for k in range(6) if k != 3] + [(7, "x0")],
            [(f"x{k}", "y") for k in range(6)],
        )
        results = []
        for latency in (0.0, 0.001):
            merged = dirty.copy()
            report = ShardedQOCO(
                merged, PerfectOracle(truth), spec=SPEC, shards=3,
                mode="inline", oracle_latency=latency,
            ).clean(QP)
            results.append((merged.state_digest(), report.total_cost))
        assert results[0] == results[1]
        assert results[0][0] == truth.state_digest()

    def test_answer_board_dedups_across_drivers(self):
        truth = _db([(k, f"x{k}") for k in range(6)], [(f"x{k}", "y") for k in range(6)])
        dirty = _db(
            [(k, f"x{k}") for k in range(6)] + [(8, "x0")],
            [(f"x{k}", "y") for k in range(6)],
        )
        board = AnswerBoard()
        first = dirty.copy()
        r1 = ShardedQOCO(
            first, PerfectOracle(truth), spec=SPEC, shards=2, mode="inline",
            board=board,
        ).clean(QP)
        assert r1.total_cost > 0
        second = dirty.copy()
        r2 = ShardedQOCO(
            second, PerfectOracle(truth), spec=SPEC, shards=2, mode="inline",
            board=board,
        ).clean(QP)
        assert second.state_digest() == first.state_digest()
        # everything the second run asks is already on the board
        assert r2.total_cost < r1.total_cost

    def test_report_summary_mentions_shards(self, worldcup_pair):
        truth, dirty = worldcup_pair
        merged = dirty.copy()
        report = ShardedQOCO(
            merged, PerfectOracle(truth), spec=worldcup_partition_spec(),
            shards=2, mode="inline",
        ).clean(Q3)
        text = report.summary()
        assert "2 shard(s)" in text and "inline" in text


class TestProcessMode:
    def test_digest_matches_inline(self):
        truth = _db([(k, f"x{k}") for k in range(8)], [(f"x{k}", "y") for k in range(8)])
        dirty = _db(
            [(k, f"x{k}") for k in range(8) if k != 2] + [(11, "x0")],
            [(f"x{k}", "y") for k in range(8)],
        )
        inline = dirty.copy()
        inline_report = ShardedQOCO(
            inline, PerfectOracle(truth), spec=SPEC, shards=2, mode="inline"
        ).clean(QP)
        procs = dirty.copy()
        proc_report = ShardedQOCO(
            procs, PerfectOracle(truth), spec=SPEC, shards=2, mode="process",
            verify_merge=True,
        ).clean(QP)
        assert procs.state_digest() == inline.state_digest()
        assert proc_report.edits_applied == inline_report.edits_applied

    def test_worldcup_end_to_end(self, worldcup_pair):
        truth, dirty = worldcup_pair
        reference, _ = _reference_clean(dirty, truth, Q3)
        merged = dirty.copy()
        report = ShardedQOCO(
            merged, PerfectOracle(truth), spec=worldcup_partition_spec(),
            shards=2, mode="process",
        ).clean(Q3)
        assert merged.state_digest() == reference.state_digest()
        assert report.mode == "process"
        assert report.rounds == 1
        # workers report their own wall-clock for the parallel-fraction
        # accounting in benchmarks/bench_shard.py
        assert all(o.seconds > 0 for o in report.outcomes)

    def test_worker_failure_surfaces(self):
        # an unshardable backend config is rejected before any spawn
        db = _db([(1, "x1")], [("x1", "y")])
        with pytest.raises(ShardingError, match="scheduler_factory"):
            ShardedQOCO(
                db, PerfectOracle(db), spec=SPEC, shards=2, mode="process",
                config=QOCOConfig(scheduler_factory=lambda: None),
            ).clean(QP)
