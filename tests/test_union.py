"""Tests for unions of conjunctive queries (UCQ extension, Section 2)."""

import pytest

from repro.query.ast import QueryError
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.union import (
    UnionQuery,
    evaluate_union,
    make_union,
    parse_union,
    union_from_queries,
)

#: Teams that appeared in a final (as winner OR loser) — genuinely needs
#: a union: CQs cannot express the disjunction.
FINALISTS = parse_union(
    """
    finalists(x) :- games(d, x, y, "Final", r).
    finalists(x) :- games(d, y, x, "Final", r).
    """
)


class TestConstruction:
    def test_arity(self):
        assert FINALISTS.arity == 1
        assert len(FINALISTS.disjuncts) == 2

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UnionQuery(())

    def test_mismatched_arities_rejected(self):
        a = parse_query("q(x) :- teams(x, c).")
        b = parse_query("q(x, c) :- teams(x, c).")
        with pytest.raises(QueryError):
            make_union([a, b])

    def test_union_from_queries_requires_single_name(self):
        a = parse_query("q(x) :- teams(x, c).")
        b = parse_query("p(x) :- teams(x, c).")
        with pytest.raises(QueryError):
            union_from_queries([a, b])

    def test_single_disjunct_union(self):
        q = parse_query("q(x) :- teams(x, c).")
        union = make_union([q])
        assert union.arity == 1

    def test_str_lists_rules(self):
        text = str(FINALISTS)
        assert text.count(":-") == 2


class TestEvaluation:
    def test_union_of_results(self, fig1_dirty):
        answers = evaluate_union(FINALISTS, fig1_dirty)
        winners = evaluate(FINALISTS.disjuncts[0], fig1_dirty)
        losers = evaluate(FINALISTS.disjuncts[1], fig1_dirty)
        assert answers == winners | losers
        assert ("ARG",) in answers  # only ever a runner-up in Figure 1
        assert ("ESP",) in answers

    def test_validate(self, fig1_dirty):
        FINALISTS.validate(fig1_dirty.schema)
        bad = parse_union("q(x) :- nosuch(x).")
        with pytest.raises(Exception):
            bad.validate(fig1_dirty.schema)

    def test_witnesses_combined_across_disjuncts(self, fig1_dirty):
        # GER won 1990/2014 and lost 1966... (not in fig1) — in Figure 1
        # GER won twice and lost 2002/1982 finals: witnesses from both
        # disjuncts must appear.
        witnesses = FINALISTS.witnesses(fig1_dirty, ("GER",))
        games = {next(iter(w)) for w in witnesses}
        assert len(witnesses) == 4  # 2 wins + 2 losses, one fact each

    def test_producing_disjuncts(self, fig1_dirty):
        producing = FINALISTS.producing_disjuncts(fig1_dirty, ("ARG",))
        assert producing == [FINALISTS.disjuncts[1]]  # only as runner-up


class TestParseUnion:
    def test_round_trip(self):
        union = parse_union(str(FINALISTS))
        assert union.arity == FINALISTS.arity
        assert len(union.disjuncts) == 2

    def test_empty_text_rejected(self):
        with pytest.raises(QueryError):
            parse_union("")
