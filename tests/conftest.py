"""Shared fixtures: the Figure 1 instance pair and the full datasets.

Session-scoped fixtures return *fresh copies* where mutation is expected
(``dirty`` databases), and shared instances where reads suffice.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.datasets.dbgroup import dbgroup_database
from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
from repro.datasets.worldcup import worldcup_database
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        action="store",
        type=int,
        default=1234,
        help="base seed mixed into every test's deterministic RNG state",
    )


@pytest.fixture(scope="session")
def repro_seed(request) -> int:
    """The base seed behind this run (``--repro-seed``, default 1234)."""
    return request.config.getoption("--repro-seed")


@pytest.fixture(autouse=True)
def _deterministic_seed(request, repro_seed):
    """Pin ``random`` (and numpy, when present) per test.

    The per-test seed mixes the base seed with the test's node id, so
    each test gets a stable-but-distinct stream: hypothesis shrinks and
    crowd-sim failures replay bit-for-bit, and reordering tests cannot
    shift another test's randomness.
    """
    seed = (zlib.crc32(request.node.nodeid.encode()) ^ repro_seed) & 0xFFFFFFFF
    random.seed(seed)
    try:
        import numpy

        numpy.random.seed(seed)
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    yield


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Leave no telemetry state behind, whatever a test did."""
    yield
    from repro.telemetry import TELEMETRY

    TELEMETRY.disable()
    for sink in TELEMETRY.sinks:
        TELEMETRY.remove_sink(sink)
    TELEMETRY.reset()


@pytest.fixture(scope="session")
def worldcup_gt():
    """The full Soccer ground truth (generated once per test session)."""
    return worldcup_database()


@pytest.fixture(scope="session")
def dbgroup_gt():
    """The full DBGroup ground truth."""
    return dbgroup_database()


@pytest.fixture
def fig1_dirty():
    """A fresh dirty Figure 1 database (safe to mutate)."""
    return figure1_dirty()


@pytest.fixture
def fig1_gt():
    """A fresh Figure 1 ground truth."""
    return figure1_ground_truth()


@pytest.fixture
def fig1_oracle(fig1_gt):
    """An accounting perfect oracle over the Figure 1 ground truth."""
    return AccountingOracle(PerfectOracle(fig1_gt))


@pytest.fixture
def rng():
    return random.Random(1234)
