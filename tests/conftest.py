"""Shared fixtures: the Figure 1 instance pair and the full datasets.

Session-scoped fixtures return *fresh copies* where mutation is expected
(``dirty`` databases), and shared instances where reads suffice.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.dbgroup import dbgroup_database
from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
from repro.datasets.worldcup import worldcup_database
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle


@pytest.fixture(scope="session")
def worldcup_gt():
    """The full Soccer ground truth (generated once per test session)."""
    return worldcup_database()


@pytest.fixture(scope="session")
def dbgroup_gt():
    """The full DBGroup ground truth."""
    return dbgroup_database()


@pytest.fixture
def fig1_dirty():
    """A fresh dirty Figure 1 database (safe to mutate)."""
    return figure1_dirty()


@pytest.fixture
def fig1_gt():
    """A fresh Figure 1 ground truth."""
    return figure1_ground_truth()


@pytest.fixture
def fig1_oracle(fig1_gt):
    """An accounting perfect oracle over the Figure 1 ground truth."""
    return AccountingOracle(PerfectOracle(fig1_gt))


@pytest.fixture
def rng():
    return random.Random(1234)
