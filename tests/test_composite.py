"""Tests for composite questions (§9 extension)."""

import random

import pytest

from repro.core.composite import crowd_remove_wrong_answer_composite
from repro.core.deletion import QOCODeletion, crowd_remove_wrong_answer
from repro.datasets.figure1 import ESP_EU, figure1_dirty
from repro.db.tuples import fact
from repro.oracle.aggregator import MajorityVote
from repro.oracle.base import AccountingOracle
from repro.oracle.crowd import Crowd
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import CATEGORY_VERIFY_TUPLES, QuestionKind
from repro.query.evaluator import evaluate
from repro.workloads import EX1


class TestOracleCompositeSupport:
    def test_perfect_oracle_default_loop(self, fig1_gt):
        oracle = PerfectOracle(fig1_gt)
        facts = [fact("teams", "ESP", "EU"), fact("teams", "BRA", "EU")]
        assert oracle.verify_facts(facts) == {facts[0]: True, facts[1]: False}

    def test_accounting_logs_one_interaction(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        facts = [fact("teams", "ESP", "EU"), fact("teams", "BRA", "EU")]
        oracle.verify_facts(facts)
        assert oracle.log.question_count == 1
        assert oracle.log.cost_of([QuestionKind.VERIFY_FACTS]) == 1

    def test_accounting_caches_per_fact(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        f1, f2 = fact("teams", "ESP", "EU"), fact("teams", "BRA", "EU")
        oracle.verify_fact(f1)
        oracle.verify_facts([f1, f2])  # only f2 goes to the backend
        oracle.verify_facts([f1, f2])  # fully cached, free
        assert oracle.log.question_count == 2

    def test_empty_batch_free(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        assert oracle.verify_facts([]) == {}
        assert oracle.log.question_count == 0

    def test_crowd_composite_majority(self, fig1_gt):
        crowd = Crowd([PerfectOracle(fig1_gt)] * 3, MajorityVote(3))
        facts = [fact("teams", "ESP", "EU"), fact("teams", "BRA", "EU")]
        replies = crowd.verify_facts(facts)
        assert replies == {facts[0]: True, facts[1]: False}
        # early stop: 2 members x 2 facts = 4 member answers
        assert crowd.stats.answers[CATEGORY_VERIFY_TUPLES] == 4


class TestCompositeDeletion:
    def test_removes_wrong_answer(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        edits = crowd_remove_wrong_answer_composite(
            EX1, fig1_dirty, ("ESP",), oracle, batch_size=3, rng=random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
        for edit in edits:
            assert edit.fact not in fig1_gt

    def test_fewer_interactions_than_single_question(self, fig1_gt):
        def interactions(batch_size):
            db = figure1_dirty()
            oracle = AccountingOracle(PerfectOracle(fig1_gt))
            if batch_size == 1:
                crowd_remove_wrong_answer(
                    EX1, db, ("ESP",), oracle, QOCODeletion(), random.Random(0)
                )
            else:
                crowd_remove_wrong_answer_composite(
                    EX1, db, ("ESP",), oracle, batch_size, random.Random(0)
                )
            return oracle.log.question_count

        assert interactions(3) < interactions(1)

    def test_batch_size_one_equivalent_outcome(self, fig1_gt):
        db = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer_composite(
            EX1, db, ("ESP",), oracle, batch_size=1, rng=random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, db)

    def test_true_shared_fact_survives(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        crowd_remove_wrong_answer_composite(
            EX1, fig1_dirty, ("ESP",), oracle, batch_size=4, rng=random.Random(0)
        )
        assert ESP_EU in fig1_dirty

    def test_invalid_batch_size(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        with pytest.raises(ValueError):
            crowd_remove_wrong_answer_composite(
                EX1, fig1_dirty, ("ESP",), oracle, batch_size=0
            )

    def test_works_with_crowd_backend(self, fig1_dirty, fig1_gt):
        crowd = Crowd([PerfectOracle(fig1_gt)] * 3, MajorityVote(3))
        oracle = AccountingOracle(crowd)
        crowd_remove_wrong_answer_composite(
            EX1, fig1_dirty, ("ESP",), oracle, batch_size=3, rng=random.Random(0)
        )
        assert ("ESP",) not in evaluate(EX1, fig1_dirty)
