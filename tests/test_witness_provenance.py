"""Unit tests for witness provenance helpers."""

from repro.db.tuples import fact
from repro.provenance.witness import (
    fact_frequencies,
    lineage,
    most_frequent_fact,
    remove_fact_from_all,
    why_provenance,
    witnesses_containing,
    witnesses_without,
)
from repro.workloads import EX1

T3 = fact("teams", ("ESP", "EU"))


class TestWhyProvenance:
    def test_esp_has_six_witnesses(self, fig1_dirty):
        witnesses = why_provenance(EX1, fig1_dirty, ("ESP",))
        assert len(witnesses) == 6

    def test_every_witness_contains_teams_fact(self, fig1_dirty):
        t3 = fact("teams", "ESP", "EU")
        for witness in why_provenance(EX1, fig1_dirty, ("ESP",)):
            assert t3 in witness
            assert len(witness) == 3  # two games + teams

    def test_non_answer_has_none(self, fig1_dirty):
        assert why_provenance(EX1, fig1_dirty, ("ITA",)) == []


class TestFrequencies:
    def test_most_frequent_is_shared_teams_fact(self, fig1_dirty):
        witnesses = why_provenance(EX1, fig1_dirty, ("ESP",))
        assert most_frequent_fact(witnesses) == fact("teams", "ESP", "EU")

    def test_frequencies_counts(self, fig1_dirty):
        witnesses = why_provenance(EX1, fig1_dirty, ("ESP",))
        counts = fact_frequencies(witnesses)
        assert counts[fact("teams", "ESP", "EU")] == 6
        # each of the 4 games appears in 3 of the C(4,2) pairs
        games = [f for f in counts if f.relation == "games"]
        assert all(counts[g] == 3 for g in games)

    def test_most_frequent_fact_empty(self):
        assert most_frequent_fact([]) is None

    def test_lineage_is_union(self, fig1_dirty):
        witnesses = why_provenance(EX1, fig1_dirty, ("ESP",))
        assert len(lineage(witnesses)) == 5  # 4 games + 1 teams


class TestSetOps:
    def test_containing_and_without_partition(self, fig1_dirty):
        witnesses = why_provenance(EX1, fig1_dirty, ("ESP",))
        some_game = next(f for f in lineage(witnesses) if f.relation == "games")
        with_f = witnesses_containing(witnesses, some_game)
        without_f = witnesses_without(witnesses, some_game)
        assert len(with_f) + len(without_f) == len(witnesses)
        assert len(with_f) == 3

    def test_remove_fact_from_all(self, fig1_dirty):
        witnesses = why_provenance(EX1, fig1_dirty, ("ESP",))
        t3 = fact("teams", "ESP", "EU")
        reduced = remove_fact_from_all(witnesses, t3)
        assert all(t3 not in w for w in reduced)
        assert all(len(w) == 2 for w in reduced)
