"""Tests for provenance semirings (the paper's [32] pointer)."""

import pytest

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.provenance.semiring import (
    BooleanSemiring,
    CountingSemiring,
    Monomial,
    Polynomial,
    TrustSemiring,
    WhySemiring,
    provenance_polynomial,
)
from repro.query.evaluator import Evaluator, valid_assignments
from repro.query.parser import parse_query
from repro.workloads import EX1


@pytest.fixture
def db():
    schema = Schema.from_dict({"r": ["a", "b"], "s": ["b"]})
    return Database(
        schema,
        [fact("r", 1, 2), fact("r", 1, 3), fact("s", 2), fact("s", 3)],
    )


QUERY = parse_query("q(a) :- r(a, b), s(b).")


class TestPolynomialConstruction:
    def test_one_monomial_per_assignment(self, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        assert len(poly.monomials) == 2  # via b=2 and b=3
        assert all(count == 1 for _, count in poly.monomials)

    def test_zero_for_non_answer(self, db):
        poly = provenance_polynomial(QUERY, db, (9,))
        assert poly.is_zero()

    def test_self_join_squares_fact(self, db):
        q = parse_query("q(a) :- r(a, b), r(a, c), s(b), s(c).")
        poly = provenance_polynomial(q, db, (1,))
        degrees = sorted(m.degree() for m, _ in poly.monomials)
        # assignments with b=c use r-fact twice and s-fact twice
        assert 4 in degrees
        squared = [
            m
            for m, _ in poly.monomials
            if any(power == 2 for _, power in m.powers)
        ]
        assert squared

    def test_str_rendering(self, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        text = str(poly)
        assert " + " in text
        assert "r(1, 2)" in text

    def test_empty_polynomial_prints_zero(self):
        assert str(Polynomial(())) == "0"

    def test_monomial_one(self):
        assert str(Monomial(())) == "1"


class TestSemiringEvaluation:
    def test_boolean(self, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        assert BooleanSemiring().evaluate(poly) is True
        assert BooleanSemiring().evaluate(Polynomial(())) is False

    def test_counting_matches_assignment_count(self, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        expected = sum(
            1
            for a in valid_assignments(QUERY, db)
            if a[list(QUERY.head_variables())[0]] == 1
        )
        assert CountingSemiring().evaluate(poly) == expected

    def test_why_matches_evaluator_witnesses(self, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        why = WhySemiring().evaluate(poly)
        witnesses = {frozenset(w) for w in Evaluator(QUERY, db).witnesses((1,))}
        assert why == witnesses

    def test_why_on_figure1(self, fig1_dirty):
        poly = provenance_polynomial(EX1, fig1_dirty, ("ESP",))
        why = WhySemiring().evaluate(poly)
        assert len(why) == 6  # Example 4.6's six witnesses

    def test_trust_best_derivation(self, db):
        trust = {
            fact("r", 1, 2): 0.9,
            fact("s", 2): 0.8,
            fact("r", 1, 3): 0.4,
            fact("s", 3): 0.95,
        }
        poly = provenance_polynomial(QUERY, db, (1,))
        best = TrustSemiring(trust).evaluate(poly)
        # derivation via b=2: min(0.9, 0.8)=0.8; via b=3: min(0.4,0.95)=0.4
        assert best == pytest.approx(0.8)

    def test_trust_default(self, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        assert TrustSemiring({}, default=0.5).evaluate(poly) == pytest.approx(0.5)

    def test_counting_respects_coefficients(self):
        m = Monomial.from_facts({fact("s", 2): 1})
        poly = Polynomial(((m, 3),))
        assert CountingSemiring().evaluate(poly) == 3


class TestSemiringLaws:
    @pytest.mark.parametrize(
        "semiring", [BooleanSemiring(), CountingSemiring(), WhySemiring()]
    )
    def test_identities(self, semiring, db):
        poly = provenance_polynomial(QUERY, db, (1,))
        value = semiring.evaluate(poly)
        assert semiring.plus(value, semiring.zero) == value
        assert semiring.times(value, semiring.one) == value

    def test_why_distributes(self):
        s = WhySemiring()
        a = s.of_fact(fact("s", 1))
        b = s.of_fact(fact("s", 2))
        c = s.of_fact(fact("s", 3))
        assert s.times(a, s.plus(b, c)) == s.plus(s.times(a, b), s.times(a, c))
