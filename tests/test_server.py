"""The multi-tenant cleaning service: forks, commits, replay, sharing."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from qoco_strategies import databases, queries, tenant_workloads
from repro.core import QOCO, QOCOConfig
from repro.db.database import Database
from repro.db.fork import DatabaseFork, ForkError
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate
from repro.server import (
    AnswerBoard,
    SessionManager,
    SessionState,
    SharedOracle,
    TenantPolicy,
)

SERVER_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _config(seed: int) -> QOCOConfig:
    return QOCOConfig(seed=seed, max_iterations=4)


# ----------------------------------------------------------------------
# the fork itself
# ----------------------------------------------------------------------
class TestDatabaseFork:
    def _db(self) -> Database:
        schema = Schema([RelationSchema("r", ("p", "q"))])
        return Database(
            schema, [Fact("r", ("a", "b")), Fact("r", ("c", "d"))]
        )

    def test_fork_is_a_database_with_identical_content(self):
        base = self._db()
        fork = base.fork()
        assert isinstance(fork, DatabaseFork)
        assert fork == base
        assert set(fork) == set(base)

    def test_fork_edits_are_invisible_to_base(self):
        base = self._db()
        fork = base.fork()
        fork.insert(Fact("r", ("x", "y")))
        fork.delete(Fact("r", ("a", "b")))
        assert Fact("r", ("x", "y")) not in base
        assert Fact("r", ("a", "b")) in base
        assert fork.delta_size() == 2

    def test_base_edits_after_fork_are_invisible_to_fork(self):
        base = self._db()
        fork = base.fork()
        base.insert(Fact("r", ("x", "y")))
        base.delete(Fact("r", ("a", "b")))
        assert Fact("r", ("x", "y")) not in fork
        assert Fact("r", ("a", "b")) in fork

    def test_pending_edits_and_touched_facts(self):
        base = self._db()
        fork = base.fork()
        fork.insert(Fact("r", ("x", "y")))
        fork.delete(Fact("r", ("a", "b")))
        assert len(fork.pending_edits) == 2
        assert fork.touched_facts() == frozenset(
            {Fact("r", ("x", "y")), Fact("r", ("a", "b"))}
        )

    def test_fork_of_fork_is_refused(self):
        fork = self._db().fork()
        with pytest.raises(ForkError):
            fork.fork()

    @given(database=databases(), query=queries())
    @SERVER_SETTINGS
    def test_fork_reads_equal_copy_reads(self, database, query):
        """A fresh fork answers queries exactly like an O(|D|) copy."""
        fork = database.fork()
        assert evaluate(query, fork) == evaluate(query, database.copy())


# ----------------------------------------------------------------------
# the commit protocol
# ----------------------------------------------------------------------
class TestCommitProtocol:
    def test_disjoint_sessions_all_commit(self, fig1_dirty, fig1_gt):
        from repro.workloads import EX1

        manager = SessionManager(fig1_dirty, config=_config(0))
        a = manager.open_session(EX1, PerfectOracle(fig1_gt), tenant="a")
        report = manager.run_all()
        assert a.state is SessionState.COMMITTED
        assert report.committed == 1 and report.failed == 0

    def test_conflicting_sessions_converge_via_replay(self, fig1_dirty, fig1_gt):
        """Two tenants cleaning the same query race on the same facts;
        the loser replays and the base ends exactly as one clean."""
        from repro.workloads import EX1

        single = fig1_dirty.copy()
        QOCO(single, AccountingOracle(PerfectOracle(fig1_gt)), _config(0)).clean(EX1)

        manager = SessionManager(fig1_dirty, config=_config(0))
        manager.open_session(EX1, PerfectOracle(fig1_gt), tenant="a")
        manager.open_session(EX1, PerfectOracle(fig1_gt), tenant="b")
        report = manager.run_all()
        assert report.failed == 0
        assert report.committed == 2
        assert fig1_dirty == single

    def test_budget_denial_before_forking(self, fig1_dirty, fig1_gt):
        from repro.workloads import EX1

        manager = SessionManager(fig1_dirty, config=_config(0), max_concurrent=1)
        policy = TenantPolicy(cost_budget=1)
        first = manager.open_session(
            EX1, PerfectOracle(fig1_gt), tenant="poor", policy=policy
        )
        second = manager.open_session(
            EX1, PerfectOracle(fig1_gt), tenant="poor", policy=policy
        )
        manager.run_all()
        assert first.state is SessionState.COMMITTED
        assert second.state is SessionState.DENIED
        assert second.fork is None  # denied sessions never fork

    def test_priority_orders_admission(self, fig1_dirty, fig1_gt):
        from repro.workloads import EX1

        manager = SessionManager(fig1_dirty, config=_config(0), max_concurrent=1)
        low = manager.open_session(
            EX1, PerfectOracle(fig1_gt), policy=TenantPolicy(priority=0)
        )
        high = manager.open_session(
            EX1, PerfectOracle(fig1_gt), policy=TenantPolicy(priority=5)
        )
        manager.run_all()
        # the high-priority session ran first: it paid for the cleaning,
        # the low-priority one found a clean database
        assert high.total_cost > low.total_cost

    def test_manager_refuses_a_fork_base(self, fig1_dirty):
        with pytest.raises(ValueError):
            SessionManager(fig1_dirty.fork())


# ----------------------------------------------------------------------
# concurrent == sequential (the acceptance property)
# ----------------------------------------------------------------------
class TestConcurrentEquivalence:
    @given(workload=tenant_workloads(n_tenants=8))
    @settings(max_examples=15, deadline=None)
    def test_eight_disjoint_sessions_match_sequential(self, workload):
        ground_truth, dirty, tenant_queries = workload

        # sequential baseline: one database, one tenant after another
        sequential = dirty.copy()
        baseline_edits = []
        for tenant, query in enumerate(tenant_queries):
            report = QOCO(
                sequential,
                AccountingOracle(PerfectOracle(ground_truth)),
                _config(tenant),
            ).clean(query)
            baseline_edits.append(
                [(e.kind.value, e.fact) for e in report.edits]
            )

        # concurrent: eight sessions racing over one base
        base = dirty.copy()
        manager = SessionManager(base, share_answers=False)
        sessions = [
            manager.open_session(
                query,
                PerfectOracle(ground_truth),
                tenant=f"t{tenant}",
                config=_config(tenant),
            )
            for tenant, query in enumerate(tenant_queries)
        ]
        report = manager.run_all()

        assert report.failed == 0 and report.denied == 0
        assert report.replays == 0  # disjoint namespaces: no conflicts
        assert base == sequential
        for session, expected in zip(sessions, baseline_edits):
            got = [(e.kind.value, e.fact) for e in session.report.edits]
            assert got == expected

    @given(
        database=databases(),
        query=queries(),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_racing_duplicate_sessions_converge(self, database, query, seed):
        """Randomized conflict property: N sessions cleaning the *same*
        query never corrupt the base — whatever the interleaving, the
        final state equals one sequential clean."""
        ground_truth = database
        dirty = database.copy()
        rng = random.Random(seed)
        pool = [f for rel in ("r", "s", "t") for f in dirty.facts(rel)]
        if pool:
            dirty.delete(rng.choice(sorted(pool, key=repr)))

        single = dirty.copy()
        QOCO(
            single, AccountingOracle(PerfectOracle(ground_truth)), _config(seed)
        ).clean(query)

        base = dirty.copy()
        manager = SessionManager(base, config=_config(seed))
        for tenant in range(3):
            manager.open_session(
                query, PerfectOracle(ground_truth), tenant=f"t{tenant}"
            )
        report = manager.run_all()
        assert report.failed == 0
        assert base == single


# ----------------------------------------------------------------------
# cross-session sharing
# ----------------------------------------------------------------------
class TestAnswerSharing:
    def _run(self, dirty, gt, share):
        from repro.workloads import EX1

        base = dirty.copy()
        manager = SessionManager(
            base, config=_config(0), max_concurrent=1, share_answers=share
        )
        manager.open_session(EX1, PerfectOracle(gt), tenant="a")
        manager.open_session(EX1, PerfectOracle(gt), tenant="b")
        return manager.run_all(), base

    def test_board_strictly_reduces_cost_on_overlapping_views(
        self, fig1_dirty, fig1_gt
    ):
        shared, shared_base = self._run(fig1_dirty, fig1_gt, share=True)
        isolated, isolated_base = self._run(fig1_dirty, fig1_gt, share=False)
        assert shared_base == isolated_base  # sharing never changes results
        assert shared.shared_hits > 0
        assert shared.total_cost < isolated.total_cost

    def test_shared_oracle_reads_published_verdicts(self, fig1_gt):
        board = AnswerBoard()
        first = SharedOracle(PerfectOracle(fig1_gt), board)
        second = SharedOracle(PerfectOracle(fig1_gt), board)
        fact = next(iter(fig1_gt))
        assert first.verify_fact(fact) is True
        assert second.verify_fact(fact) is True
        assert second.shared_hits == 1
        assert second.log.total_cost == 0  # answered free from the board

    def test_forget_keeps_the_board(self, fig1_gt):
        board = AnswerBoard()
        oracle = SharedOracle(PerfectOracle(fig1_gt), board)
        fact = next(iter(fig1_gt))
        oracle.verify_fact(fact)
        oracle.forget()
        assert len(board) == 1  # one tenant's re-poll keeps others' sharing


# ----------------------------------------------------------------------
# dispatch-mode sessions
# ----------------------------------------------------------------------
class TestDispatchSessions:
    def test_dispatch_session_commits_with_wall_clock(self, fig1_dirty, fig1_gt):
        from repro.dispatch import WorkerPool
        from repro.workloads import EX1

        member = PerfectOracle(fig1_gt)
        manager = SessionManager(
            fig1_dirty,
            mode="dispatch",
            pool=WorkerPool([member] * 4),
            config=_config(0),
        )
        session = manager.open_session(EX1, member)
        report = manager.run_all()
        assert report.committed == 1
        assert session.report.wall_clock > 0
        assert session.report.rounds > 0

    def test_dispatch_mode_requires_a_pool(self, fig1_dirty, fig1_gt):
        from repro.workloads import EX1

        manager = SessionManager(fig1_dirty, mode="dispatch")
        with pytest.raises(ValueError):
            manager.open_session(EX1, PerfectOracle(fig1_gt))


# ----------------------------------------------------------------------
# closing the manager
# ----------------------------------------------------------------------
class TestManagerClose:
    """Pins ``SessionManager.close()``: idempotent, safe to call from
    several threads at once, and safe to race against in-flight commits
    (a commit that loses the race lands in memory; everything written
    before the WAL handle went away stays recoverable)."""

    def _burst_manager(self, tmp_path, tenants: int):
        schema = Schema([RelationSchema("r", ("tenant", "v"))])
        truth = [
            Fact("r", (f"t{i}", f"v{j}")) for i in range(tenants) for j in range(3)
        ]
        ground = Database(schema, truth)
        dirty = ground.copy()
        for i in range(tenants):
            dirty.insert(Fact("r", (f"t{i}", "bogus")))
        return (
            SessionManager(dirty, mode="sync", durable_path=tmp_path),
            ground,
        )

    def test_close_is_idempotent(self, tmp_path, fig1_dirty):
        manager = SessionManager(fig1_dirty, mode="sync", durable_path=tmp_path)
        assert manager.durable
        manager.close()
        assert not manager.durable
        manager.close()  # second (and third) close: no error, no effect
        manager.close(checkpoint=True)

    def test_concurrent_close_races_inflight_commits(self, tmp_path):
        import threading

        from repro.query.parser import parse_query

        tenants = 8
        manager, ground = self._burst_manager(tmp_path, tenants)
        oracle = PerfectOracle(ground)
        sessions = [
            manager.open_session(
                parse_query(f'q{i}(x) :- r("t{i}", x).'), oracle, tenant=f"t{i}"
            )
            for i in range(tenants)
        ]
        barrier = threading.Barrier(tenants + 4)

        def drive(session) -> None:
            barrier.wait()
            manager.drive(session)

        def close() -> None:
            barrier.wait()
            manager.close()

        threads = [
            threading.Thread(target=drive, args=(s,)) for s in sessions
        ] + [threading.Thread(target=close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)

        # every commit landed (in the WAL or, post-close, in memory only)
        assert all(s.state is SessionState.COMMITTED for s in sessions)
        assert not manager.durable
        for i in range(tenants):
            assert Fact("r", (f"t{i}", "bogus")) not in manager.database

        # whatever prefix hit the disk before close is a valid,
        # recoverable state: a subset of the commits, never corruption
        from repro.durability.recovery import recover_manager

        recovered = recover_manager(tmp_path)
        try:
            for i in range(tenants):
                assert Fact("r", (f"t{i}", "v0")) in recovered.database
        finally:
            recovered.close()
