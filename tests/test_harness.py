"""Tests for the experiment harness measurements."""

import pytest

from repro.experiments.harness import (
    BarMeasurement,
    deletion_upper_bound,
    insertion_upper_bound,
    plant_errors,
    run_deletion,
    run_insertion,
    run_mixed,
)
from repro.query.evaluator import Evaluator, evaluate
from repro.workloads import Q1, Q3


@pytest.fixture(scope="module")
def q1_errors(worldcup_gt):
    return plant_errors(worldcup_gt, Q1, n_wrong=2, n_missing=0, seed=42)


@pytest.fixture(scope="module")
def q1_missing(worldcup_gt):
    return plant_errors(worldcup_gt, Q1, n_wrong=0, n_missing=2, seed=43)


class TestBarMeasurement:
    def test_avoided_derivation(self):
        bar = BarMeasurement("deletion", "Q1", "QOCO", lower=5, questions=3, naive_upper=10)
        assert bar.avoided == 7
        assert bar.total == 15

    def test_avoided_clipped_at_zero(self):
        bar = BarMeasurement("x", "g", "a", lower=1, questions=20, naive_upper=10)
        assert bar.avoided == 0


class TestDeletionRun:
    def test_cleans_all_wrong_answers(self, worldcup_gt, q1_errors):
        run_deletion(worldcup_gt, Q1, q1_errors, "QOCO", seed=1)
        # the measurement works on a copy; the planted instance is intact
        assert evaluate(Q1, q1_errors.dirty) != evaluate(Q1, worldcup_gt)

    def test_lower_bound_is_result_size(self, worldcup_gt, q1_errors):
        bar = run_deletion(worldcup_gt, Q1, q1_errors, "QOCO", seed=1)
        assert bar.lower >= len(evaluate(Q1, q1_errors.dirty)) - len(
            q1_errors.wrong_answers
        )

    def test_upper_bound_counts_distinct_witness_facts(self, worldcup_gt, q1_errors):
        upper = deletion_upper_bound(Q1, q1_errors.dirty, q1_errors.wrong_answers)
        facts = set()
        evaluator = Evaluator(Q1, q1_errors.dirty)
        for answer in q1_errors.wrong_answers:
            for witness in evaluator.witnesses(answer):
                facts |= witness
        assert upper == len(facts)

    def test_qoco_at_most_random(self, worldcup_gt, q1_errors):
        qoco = run_deletion(worldcup_gt, Q1, q1_errors, "QOCO", seed=1)
        rand = run_deletion(worldcup_gt, Q1, q1_errors, "Random", seed=1)
        assert qoco.questions <= rand.questions

    def test_unknown_strategy_rejected(self, worldcup_gt, q1_errors):
        with pytest.raises(KeyError):
            run_deletion(worldcup_gt, Q1, q1_errors, "Nope", seed=1)


class TestInsertionRun:
    def test_identifies_and_inserts(self, worldcup_gt, q1_missing):
        bar = run_insertion(worldcup_gt, Q1, q1_missing, "Provenance", seed=1)
        assert bar.lower >= 1
        # questions may legitimately be 0: when the deleted fact grounds
        # out in Q|t (e.g. teams(TCH, EU)), Algorithm 2's TrueTuples step
        # re-inserts it without consulting the crowd.
        assert bar.questions >= 0

    def test_upper_bound_counts_embedded_variables(self, worldcup_gt, q1_missing):
        upper = insertion_upper_bound(Q1, q1_missing.missing_answers)
        # Q1|t has 6 variables left after binding x.
        assert upper == 6 * len(q1_missing.missing_answers)

    def test_split_beats_naive_bound(self, worldcup_gt, q1_missing):
        bar = run_insertion(worldcup_gt, Q1, q1_missing, "Provenance", seed=1)
        assert bar.questions < bar.lower + bar.naive_upper


class TestMixedRun:
    def test_mixed_categories_sum(self, worldcup_gt):
        errors = plant_errors(worldcup_gt, Q3, n_wrong=2, n_missing=2, seed=7)
        mixed = run_mixed(worldcup_gt, Q3, errors, seed=7)
        # Category costs equal lower+questions up to the terminating
        # COMPL(Q(D)) probes (one "nothing missing" reply per iteration).
        difference = sum(mixed.categories.values()) - (
            mixed.bar.lower + mixed.bar.questions
        )
        assert 0 <= difference <= 3

    def test_mixed_converges(self, worldcup_gt):
        errors = plant_errors(worldcup_gt, Q3, n_wrong=2, n_missing=2, seed=8)
        mixed = run_mixed(worldcup_gt, Q3, errors, seed=8)
        assert mixed.bar.questions > 0
