"""Tests for repair-quality metrics."""

import pytest

from repro.db.database import Database
from repro.db.edits import delete, insert
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.experiments.metrics import edit_is_correct, repair_quality


@pytest.fixture
def gt():
    schema = Schema.from_dict({"r": ["a"]})
    return Database(schema, [fact("r", 1), fact("r", 2)])


class TestEditIsCorrect:
    def test_delete_false_fact_correct(self, gt):
        assert edit_is_correct(delete(fact("r", 99)), gt)

    def test_delete_true_fact_incorrect(self, gt):
        assert not edit_is_correct(delete(fact("r", 1)), gt)

    def test_insert_true_fact_correct(self, gt):
        assert edit_is_correct(insert(fact("r", 2)), gt)

    def test_insert_false_fact_incorrect(self, gt):
        assert not edit_is_correct(insert(fact("r", 99)), gt)


class TestRepairQuality:
    def test_perfect_repair(self, gt):
        corruption = [delete(fact("r", 2)), insert(fact("r", 99))]
        applied = [insert(fact("r", 2)), delete(fact("r", 99))]
        quality = repair_quality(applied, corruption, gt)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_partial_recall(self, gt):
        corruption = [delete(fact("r", 2)), insert(fact("r", 99))]
        applied = [insert(fact("r", 2))]
        quality = repair_quality(applied, corruption, gt)
        assert quality.precision == 1.0
        assert quality.recall == 0.5

    def test_spurious_edit_hits_precision(self, gt):
        corruption = [insert(fact("r", 99))]
        applied = [delete(fact("r", 99)), delete(fact("r", 1))]  # 2nd is wrong
        quality = repair_quality(applied, corruption, gt)
        assert quality.precision == 0.5
        assert quality.recall == 1.0
        assert 0 < quality.f1 < 1

    def test_relevant_corruption_restricts_recall(self, gt):
        corruption = [delete(fact("r", 2)), insert(fact("r", 99))]
        applied = [insert(fact("r", 2))]
        quality = repair_quality(
            applied, corruption, gt, relevant_corruption=[delete(fact("r", 2))]
        )
        assert quality.recall == 1.0

    def test_empty_everything(self, gt):
        quality = repair_quality([], [], gt)
        assert quality.precision == 1.0
        assert quality.recall == 1.0

    def test_str_mentions_scores(self, gt):
        quality = repair_quality([], [], gt)
        assert "precision=1.00" in str(quality)


class TestEndToEndQuality:
    def test_dbgroup_repair_scores(self, dbgroup_gt):
        """The Section 7.1 run repairs with perfect precision."""
        from repro.core.qoco import QOCO, QOCOConfig
        from repro.datasets.dbgroup import seeded_errors
        from repro.oracle.base import AccountingOracle
        from repro.oracle.perfect import PerfectOracle
        from repro.workloads import DBGROUP_QUERIES

        dirty, corruption = seeded_errors(dbgroup_gt)
        oracle = AccountingOracle(PerfectOracle(dbgroup_gt))
        system = QOCO(dirty, oracle, QOCOConfig(seed=9))
        applied = []
        for query in DBGROUP_QUERIES.values():
            applied += system.clean(query).edits
        quality = repair_quality(applied, corruption, dbgroup_gt)
        assert quality.precision == 1.0  # perfect oracle: no spurious edits
        assert quality.recall > 0.4      # query-scoped: only visible errors
