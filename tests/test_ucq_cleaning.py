"""Tests for cleaning under unions of conjunctive queries."""

import random

import pytest

from repro.core.ucq import (
    UCQCleaner,
    add_missing_answer_union,
    remove_wrong_answer_union,
)
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.union import parse_union

#: Finalists (winner or runner-up) over the Figure 1 fragment.
FINALISTS = parse_union(
    """
    finalists(x) :- games(d, x, y, "Final", r).
    finalists(x) :- games(d, y, x, "Final", r).
    """
)


@pytest.fixture
def oracle(fig1_gt):
    return AccountingOracle(PerfectOracle(fig1_gt))


class TestUnionDeletion:
    def test_wrong_answer_removed_from_both_disjuncts(self, fig1_dirty, fig1_gt, oracle):
        # In Figure 1's dirty DB, ESP "won" finals it never played; ESP is
        # still a genuine finalist (2010), so the union answer is true.
        # Fabricate an answer wrong under both disjuncts instead: add fake
        # games featuring a non-existent team.
        fake1 = fact("games", "01.01.1999", "XXX", "GER", "Final", "1:0")
        fake2 = fact("games", "02.01.1999", "GER", "XXX", "Final", "2:0")
        fig1_dirty.insert(fake1)
        fig1_dirty.insert(fake2)
        assert ("XXX",) in FINALISTS.answers(fig1_dirty)

        edits = remove_wrong_answer_union(
            FINALISTS, fig1_dirty, ("XXX",), oracle, rng=random.Random(0)
        )
        assert ("XXX",) not in FINALISTS.answers(fig1_dirty)
        assert {e.fact for e in edits} == {fake1, fake2}

    def test_only_false_facts_deleted(self, fig1_dirty, fig1_gt, oracle):
        fig1_dirty.insert(fact("games", "01.01.1999", "XXX", "GER", "Final", "1:0"))
        edits = remove_wrong_answer_union(
            FINALISTS, fig1_dirty, ("XXX",), oracle, rng=random.Random(0)
        )
        for edit in edits:
            assert edit.fact not in fig1_gt


class TestUnionInsertion:
    def test_missing_answer_added_via_right_disjunct(self, fig1_dirty, fig1_gt, oracle):
        # FRA lost the 2006 final (true) but in the dirty DB loses nothing
        # after we remove that game; FRA is then a missing finalist.
        game_2006 = fact("games", "09.07.2006", "ITA", "FRA", "Final", "5:3")
        fig1_dirty.delete(game_2006)
        assert ("FRA",) not in FINALISTS.answers(fig1_dirty)

        edits = add_missing_answer_union(
            FINALISTS, fig1_dirty, ("FRA",), oracle, rng=random.Random(0)
        )
        assert ("FRA",) in FINALISTS.answers(fig1_dirty)
        for edit in edits:
            assert edit.fact in fig1_gt

    def test_probes_disjuncts_with_closed_questions(self, fig1_dirty, fig1_gt, oracle):
        fig1_dirty.delete(fact("games", "09.07.2006", "ITA", "FRA", "Final", "5:3"))
        add_missing_answer_union(
            FINALISTS, fig1_dirty, ("FRA",), oracle, rng=random.Random(0)
        )
        from repro.oracle.questions import QuestionKind

        assert oracle.log.count_of([QuestionKind.VERIFY_CANDIDATE]) >= 1

    def test_impossible_answer_raises(self, fig1_dirty, oracle):
        from repro.core.insertion import InsertionError

        with pytest.raises(InsertionError):
            add_missing_answer_union(
                FINALISTS, fig1_dirty, ("NOPE",), oracle, rng=random.Random(0)
            )


class TestUnionMainLoop:
    def test_clean_converges_to_union_ground_truth(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        # dirty finalists: includes nobody missing but ESP's fake games are
        # harmless (ESP is a true finalist); corrupt harder:
        fig1_dirty.insert(fact("games", "01.01.1999", "XXX", "GER", "Final", "1:0"))
        fig1_dirty.delete(fact("games", "09.07.2006", "ITA", "FRA", "Final", "5:3"))

        system = UCQCleaner(fig1_dirty, oracle, seed=0)
        report = system.clean(FINALISTS)
        assert report.converged
        assert FINALISTS.answers(fig1_dirty) == FINALISTS.answers(fig1_gt)

    def test_clean_noop_on_clean_db(self, fig1_gt):
        db = fig1_gt.copy()
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        report = UCQCleaner(db, oracle, seed=0).clean(FINALISTS)
        assert report.edits == []
        assert db == fig1_gt
