"""Cross-backend differential conformance: every backend is the reference.

The :class:`~repro.query.backend.EvalBackend` contract is that the
substrate is invisible: answers, per-answer support counts, and witness
multisets must be bit-identical to the naive backtracking reference,
whatever engine computed them.  This suite pins that contract four ways:

1. **Workload conformance** — every backend agrees with the reference on
   every workload query (soccer/worldcup Q1-Q8 + EX1/EX2, dbgroup G1-G4,
   Figure 1) over the synthetic instances, including full
   ``EvalResult`` parity (answers, support, witness multisets).
2. **Small-instance agreement** — hypothesis-driven: random databases
   and random queries (with inequalities and up to two negated atoms)
   against the cross-product oracle ``naive_evaluate``.
3. **Edit-replay conformance** — randomized insert/delete sequences
   replayed through :class:`IncrementalAnswers` with each backend as the
   ``evaluator_factory``; after every edit the maintained view must
   equal a from-scratch reference evaluation.
4. **Metamorphic properties** — row-order shuffling, column permutation
   under renamed schemas, and duplicate-fact idempotence leave every
   backend's ``EvalResult`` unchanged.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from qoco_strategies import SCHEMA, databases, facts, queries
from repro.datasets.dbgroup import DBGroupConfig, dbgroup_database
from repro.datasets.figure1 import figure1_dirty
from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.query.ast import Atom, Query, Var
from repro.query.backend import (
    BackendEvaluator,
    NaiveBackend,
    resolve_backend,
)
from repro.query.evaluator import Evaluator, naive_evaluate
from repro.query.incremental import IncrementalAnswers
from repro.workloads import DBGROUP_QUERIES, EX1, EX2, SOCCER_QUERIES

BACKEND_NAMES = ["naive", "columnar", "sql"]

CONFORMANCE_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_REFERENCE = NaiveBackend()


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    """Each registered backend, wrapped with its naive fallback."""
    return resolve_backend(request.param)


def assert_conformant(backend, query, database):
    """Full ``EvalResult`` parity against the reference backend."""
    ref = _REFERENCE.run(query, database)
    got = backend.run(query, database)
    assert got.answers == ref.answers
    assert got.support == ref.support
    assert got.witness_support == ref.witness_support
    assert backend.evaluate(query, database) == ref.answers


# ---------------------------------------------------------------------------
# 1. workload conformance
# ---------------------------------------------------------------------------

# Scaled-down instances: conformance needs full witness enumeration per
# query, so the suite runs the paper's workloads at laptop-test scale.
WORLDCUP = WorldCupConfig(players_per_team=6, group_games_per_cup=4)
DBGROUP = DBGroupConfig(n_members=12, n_publications=40, n_events=20, n_trips=30)


@pytest.fixture(scope="module")
def worldcup_db():
    return worldcup_database(WORLDCUP)


@pytest.fixture(scope="module")
def dbgroup_db():
    return dbgroup_database(DBGROUP)


@pytest.fixture(scope="module")
def figure1_db():
    return figure1_dirty()


class TestWorkloadConformance:
    @pytest.mark.parametrize("name", sorted(SOCCER_QUERIES))
    def test_soccer_queries(self, backend, worldcup_db, name):
        assert_conformant(backend, SOCCER_QUERIES[name], worldcup_db)

    @pytest.mark.parametrize("name", sorted(DBGROUP_QUERIES))
    def test_dbgroup_queries(self, backend, dbgroup_db, name):
        assert_conformant(backend, DBGROUP_QUERIES[name], dbgroup_db)

    @pytest.mark.parametrize("query", [EX1, EX2], ids=lambda q: q.name)
    def test_figure1_queries(self, backend, figure1_db, query):
        assert_conformant(backend, query, figure1_db)

    def test_is_satisfiable_agrees_on_workload_answers(
        self, backend, worldcup_db
    ):
        query = SOCCER_QUERIES["Q2"]
        reference = Evaluator(query, worldcup_db)
        for answer in sorted(_REFERENCE.evaluate(query, worldcup_db))[:5]:
            partial = {
                var: value
                for var, value in zip(query.head, answer)
                if isinstance(var, Var)
            }
            assert backend.is_satisfiable(query, worldcup_db, partial)
            assert reference.is_satisfiable(partial)


# ---------------------------------------------------------------------------
# 2. small-instance agreement with the cross-product oracle
# ---------------------------------------------------------------------------


class TestSmallInstanceAgreement:
    @CONFORMANCE_SETTINGS
    @given(database=databases(), query=queries(negation=True))
    def test_evaluate_matches_cross_product_oracle(
        self, backend, database, query
    ):
        assert backend.evaluate(query, database) == naive_evaluate(
            query, database
        )

    @CONFORMANCE_SETTINGS
    @given(
        database=databases(),
        query=queries(negation=True, min_inequalities=1),
    )
    def test_run_matches_reference_under_inequalities(
        self, backend, database, query
    ):
        assert_conformant(backend, query, database)

    @CONFORMANCE_SETTINGS
    @given(
        database=databases(),
        query=queries(negation=True, min_negated=1),
    )
    def test_run_matches_reference_under_negation(
        self, backend, database, query
    ):
        assert_conformant(backend, query, database)


# ---------------------------------------------------------------------------
# 3. randomized edit replays through the incremental engine
# ---------------------------------------------------------------------------


def _factory(backend):
    """An ``evaluator_factory`` that runs delta rules on *backend*."""
    if isinstance(backend, NaiveBackend):
        return Evaluator
    return lambda query, database: BackendEvaluator(query, database, backend)


class TestEditReplayConformance:
    @CONFORMANCE_SETTINGS
    @given(
        database=databases(),
        query=queries(negation=True),
        edits=st.lists(facts(), max_size=8),
    )
    def test_incremental_view_stays_conformant(
        self, backend, database, query, edits
    ):
        view = IncrementalAnswers(
            query, database, evaluator_factory=_factory(backend)
        )
        for fact in edits:
            if fact in database.facts(fact.relation):
                database.delete(fact)
            else:
                database.insert(fact)
            reference = _REFERENCE.run(query, database)
            assert view.answers() == reference.answers
            for answer in reference.answers:
                assert view.support(answer) == reference.support[answer]
                assert (
                    view.witness_count(answer)
                    == len(reference.witness_support[answer])
                )
        view.close()

    @CONFORMANCE_SETTINGS
    @given(
        database=databases(),
        query=queries(negation=True),
        edits=st.lists(facts(), min_size=1, max_size=6),
    )
    def test_witness_multisets_survive_replay(
        self, backend, database, query, edits
    ):
        view = IncrementalAnswers(
            query, database, evaluator_factory=_factory(backend)
        )
        for fact in edits:
            if fact in database.facts(fact.relation):
                database.delete(fact)
            else:
                database.insert(fact)
        reference = _REFERENCE.run(query, database)
        assert view.answers() == reference.answers
        for answer in reference.answers:
            assert sorted(view.witnesses(answer), key=repr) == sorted(
                reference.witness_support[answer], key=repr
            )
        view.close()


# ---------------------------------------------------------------------------
# 4. metamorphic properties
# ---------------------------------------------------------------------------


def _permuted_instance(database, query):
    """Rename every relation and reverse its columns, consistently.

    ``r(p, q)`` becomes ``pr(q, p)`` and so on; atoms (positive and
    negated) are rewritten to match.  The head is untouched, so answers
    must be identical under any backend.
    """
    schema = Schema(
        [
            RelationSchema(
                f"p{rel}", tuple(reversed(SCHEMA.relation(rel).attributes))
            )
            for rel in ("r", "s", "t")
        ]
    )
    renamed = Database(
        schema,
        [
            Fact(f"p{f.relation}", tuple(reversed(f.values)))
            for rel in ("r", "s", "t")
            for f in database.facts(rel)
        ],
    )

    def rewrite(atom):
        return Atom(f"p{atom.relation}", tuple(reversed(atom.terms)))

    rewritten = Query(
        query.head,
        tuple(rewrite(a) for a in query.atoms),
        query.inequalities,
        query.name,
        tuple(rewrite(a) for a in query.negated_atoms),
    )
    return renamed, rewritten


class TestMetamorphicProperties:
    @CONFORMANCE_SETTINGS
    @given(
        database=databases(),
        query=queries(negation=True),
        seed=st.randoms(use_true_random=False),
    )
    def test_row_order_shuffle_is_invisible(
        self, backend, database, query, seed
    ):
        all_facts = [
            f for rel in ("r", "s", "t") for f in sorted(
                database.facts(rel), key=repr
            )
        ]
        seed.shuffle(all_facts)
        shuffled = Database(SCHEMA, all_facts)
        assert_conformant(backend, query, shuffled)
        assert backend.run(query, shuffled).answers == backend.run(
            query, database
        ).answers

    @CONFORMANCE_SETTINGS
    @given(database=databases(), query=queries(negation=True))
    def test_column_permutation_under_renamed_schema(
        self, backend, database, query
    ):
        renamed, rewritten = _permuted_instance(database, query)
        original = backend.run(query, database)
        permuted = backend.run(rewritten, renamed)
        assert permuted.answers == original.answers
        assert permuted.support == original.support
        # witnesses live in the renamed schema; compare their shape
        assert {
            answer: sorted(counter.values())
            for answer, counter in permuted.witness_support.items()
        } == {
            answer: sorted(counter.values())
            for answer, counter in original.witness_support.items()
        }

    @CONFORMANCE_SETTINGS
    @given(database=databases(), query=queries(negation=True))
    def test_duplicate_fact_idempotence(self, backend, database, query):
        all_facts = [
            f for rel in ("r", "s", "t") for f in database.facts(rel)
        ]
        doubled = Database(SCHEMA, all_facts + all_facts)
        assert_conformant(backend, query, doubled)
        doubled_result = backend.run(query, doubled)
        baseline = backend.run(query, database)
        assert doubled_result.answers == baseline.answers
        assert doubled_result.support == baseline.support
