"""The public API surface: snapshot, deprecation shims, facade parity.

The snapshot lists are the contract: changing ``repro.api.__all__`` or
``repro.__all__`` without updating them here is a CI failure
(the ``api-surface`` check), which is the point — public-surface drift
should be a reviewed decision, not an accident.
"""

from __future__ import annotations


import pytest

import repro
import repro.api
from repro.core import QOCO, QOCOConfig, UCQCleaner
from repro.core.parallel import ParallelQOCO
from repro.core.report import Report, ReportLike
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate

API_SURFACE = [
    "clean",
    "clean_parallel",
    "clean_sharded",
    "clean_union",
    "dispatch_clean",
    "evaluate",
    "load_csv",
    "open_session",
    "recover",
    "recover_server",
    "repair",
    "serve",
    "serve_http",
]

PACKAGE_SURFACE = [
    "REGISTRY",
    "TELEMETRY",
    "AccountingOracle",
    "AnswerBoard",
    "Atom",
    "BanditPlanner",
    "CapacityScheduler",
    "Chao92Estimator",
    "CostModel",
    "CleaningReport",
    "CleaningSession",
    "Crowd",
    "Database",
    "DatabaseFork",
    "DeletionError",
    "DenialConstraint",
    "DuplicateRows",
    "Edit",
    "ExactCompletion",
    "FD",
    "Fact",
    "ForkError",
    "ImperfectOracle",
    "InMemorySink",
    "Inequality",
    "InsertionError",
    "InteractionLog",
    "JSONLSink",
    "KeySpec",
    "MajorityVote",
    "MinCutSplit",
    "MixedFormats",
    "NaiveSplit",
    "NoisePipeline",
    "NoiseSpec",
    "Oracle",
    "OracleRepairer",
    "Outliers",
    "ParallelQOCO",
    "PartitionSpec",
    "PerfectOracle",
    "ProvenanceSplit",
    "QOCO",
    "QOCOConfig",
    "QOCODeletion",
    "QOCOMinusDeletion",
    "Query",
    "QuestionKind",
    "QuestionPlanner",
    "RandomDeletion",
    "RandomSplit",
    "RegistryError",
    "RelationSchema",
    "RepairBudget",
    "RepairReport",
    "RepairSession",
    "Report",
    "ReportLike",
    "Schema",
    "ServerReport",
    "SessionManager",
    "SessionState",
    "ShardedQOCO",
    "StrategyRegistry",
    "Telemetry",
    "TenantPolicy",
    "TypePollution",
    "UCQCleaner",
    "Var",
    "Violation",
    "api",
    "crowd_add_missing_answer",
    "crowd_remove_wrong_answer",
    "dbgroup_database",
    "delete",
    "evaluate",
    "fact",
    "find_violations",
    "inject_result_errors",
    "insert",
    "make_dirty",
    "parse_fd",
    "parse_query",
    "query_signature",
    "resolve_strategy",
    "standard_noise",
    "telemetry_session",
    "witnesses_for",
    "worldcup_database",
]


class TestSurfaceSnapshot:
    def test_api_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == API_SURFACE

    def test_package_all_matches_snapshot(self):
        assert sorted(repro.__all__) == sorted(PACKAGE_SURFACE)

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None


class TestDeprecationShims:
    def test_union_qoco_name_warns_and_works(self, fig1_dirty, fig1_gt):
        with pytest.warns(DeprecationWarning, match="UCQCleaner"):
            cls = repro.UnionQOCO
        assert issubclass(cls, UCQCleaner)

    def test_parallel_report_name_warns_and_aliases(self):
        with pytest.warns(DeprecationWarning, match="Report"):
            alias = repro.ParallelReport
        assert alias is Report

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_positional_split_strategy_warns(self, fig1_dirty, fig1_oracle):
        from repro.core.split import NaiveSplit

        with pytest.warns(DeprecationWarning, match="split_strategy"):
            qoco = ParallelQOCO(fig1_dirty, fig1_oracle, NaiveSplit())
        assert isinstance(qoco.split_strategy, NaiveSplit)

    def test_positional_deletion_strategy_warns(self, fig1_dirty, fig1_oracle):
        from repro.core.deletion import RandomDeletion

        with pytest.warns(DeprecationWarning, match="deletion_strategy"):
            cleaner = UCQCleaner(fig1_dirty, fig1_oracle, RandomDeletion())
        assert isinstance(cleaner.deletion_strategy, RandomDeletion)

    def test_old_report_names_are_thin_aliases(self):
        from repro.core.parallel import ParallelReport
        from repro.core.session import CleaningReport

        assert CleaningReport is Report
        assert ParallelReport is Report


class TestUnifiedConfig:
    def test_all_three_loops_accept_the_same_config(self, fig1_dirty, fig1_oracle):
        config = QOCOConfig(seed=7, max_iterations=3)
        assert QOCO(fig1_dirty, fig1_oracle, config).config is config
        assert ParallelQOCO(fig1_dirty, fig1_oracle, config).config is config
        assert UCQCleaner(fig1_dirty, fig1_oracle, config).config is config

    def test_keyword_shims_override_config_fields(self, fig1_dirty, fig1_oracle):
        config = QOCOConfig(seed=7, max_iterations=3)
        qoco = QOCO(fig1_dirty, fig1_oracle, config, max_iterations=9)
        assert qoco.config.max_iterations == 9
        assert qoco.config.seed == 7  # untouched fields pass through
        assert config.max_iterations == 3  # the caller's config is not mutated

    def test_parallel_keywords_map_to_config(self, fig1_dirty, fig1_oracle):
        qoco = ParallelQOCO(
            fig1_dirty, fig1_oracle, completion_width=2, seed=5
        )
        assert qoco.config.completion_width == 2
        assert qoco.completion_width == 2
        assert qoco.config.seed == 5

    def test_reports_satisfy_the_protocol(self):
        report = Report(query_name="q")
        assert isinstance(report, ReportLike)
        assert report.total_cost == 0
        assert "q" in report.summary()


class TestStrategyRegistry:
    """One registry, string names accepted uniformly (the PR 9 redesign)."""

    def test_string_names_resolve_everywhere(self, fig1_dirty, fig1_oracle):
        from repro.core.deletion import QOCOMinusDeletion
        from repro.core.heuristics import ResponsibilityDeletion
        from repro.core.split import MinCutSplit
        from repro.plan import BanditPlanner

        config = QOCOConfig(
            split="mincut", deletion="responsibility", planner="bandit", seed=3
        )
        qoco = QOCO(fig1_dirty, fig1_oracle, config)
        assert isinstance(qoco.split_strategy, MinCutSplit)
        assert isinstance(qoco.deletion_strategy, ResponsibilityDeletion)
        assert isinstance(qoco.planner, BanditPlanner)

        minus = QOCO(fig1_dirty, fig1_oracle, deletion="qoco-")
        assert isinstance(minus.deletion_strategy, QOCOMinusDeletion)

    def test_names_are_case_insensitive_legacy_spelling(self, fig1_dirty, fig1_oracle):
        from repro.core.split import MinCutSplit

        qoco = QOCO(fig1_dirty, fig1_oracle, split="MinCut")
        assert isinstance(qoco.split_strategy, MinCutSplit)

    def test_instances_still_work(self, fig1_dirty, fig1_oracle):
        from repro.core.split import NaiveSplit

        strategy = NaiveSplit()
        qoco = QOCO(fig1_dirty, fig1_oracle, split=strategy)
        assert qoco.split_strategy is strategy

    def test_unknown_name_lists_alternatives(self):
        from repro.core import REGISTRY, RegistryError

        with pytest.raises(RegistryError, match="mincut"):
            REGISTRY.resolve("split", "does-not-exist")
        with pytest.raises(RegistryError):
            QOCOConfig(split="does-not-exist").split_strategy

    def test_registry_enumerates_kinds_and_names(self):
        from repro.core import REGISTRY

        assert {"split", "deletion", "planner"} <= set(REGISTRY.kinds())
        assert "provenance" in REGISTRY.names("split")
        assert "responsibility" in REGISTRY.names("deletion")
        assert "bandit" in REGISTRY.names("planner")

    def test_legacy_config_kwargs_warn_and_map(self):
        from repro.core.split import NaiveSplit

        with pytest.warns(DeprecationWarning, match="split_strategy"):
            config = QOCOConfig(split_strategy=NaiveSplit())
        assert isinstance(config.split_strategy, NaiveSplit)
        with pytest.warns(DeprecationWarning, match="deletion_strategy"):
            config = QOCOConfig(deletion_strategy="random")
        assert config.deletion == "random"

    def test_unknown_config_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            QOCOConfig(not_a_field=1)

    def test_parallel_and_ucq_accept_string_names(self, fig1_dirty, fig1_oracle):
        from repro.core.split import RandomSplit

        parallel = ParallelQOCO(fig1_dirty, fig1_oracle, split="random")
        assert isinstance(parallel.split_strategy, RandomSplit)
        ucq = UCQCleaner(fig1_dirty, fig1_oracle, deletion="qoco")
        assert type(ucq.deletion_strategy).__name__ == "QOCODeletion"


class TestFacadeParity:
    def test_api_clean_equals_direct_qoco(self, fig1_gt):
        from repro.datasets.figure1 import figure1_dirty
        from repro.workloads import EX1

        direct_db = figure1_dirty()
        direct = QOCO(
            direct_db,
            AccountingOracle(PerfectOracle(fig1_gt)),
            QOCOConfig(seed=0),
        ).clean(EX1)

        facade_db = figure1_dirty()
        facade = repro.api.clean(
            facade_db, EX1, PerfectOracle(fig1_gt), seed=0
        )

        assert facade_db == direct_db
        assert evaluate(EX1, facade_db) == evaluate(EX1, direct_db)
        assert [(e.kind.value, e.fact) for e in facade.edits] == [
            (e.kind.value, e.fact) for e in direct.edits
        ]
        assert facade.log.to_dicts() == direct.log.to_dicts()
        assert facade.summary() == direct.summary()

    def test_api_clean_parses_query_strings(self, fig1_gt):
        from repro.datasets.figure1 import figure1_dirty

        db = figure1_dirty()
        source = 'q(x) :- games(d, x, y, "Final", u), teams(x, "EU").'
        report = repro.api.clean(db, source, PerfectOracle(fig1_gt), seed=0)
        assert report.converged
        assert report.query_name == "q"

    def test_open_session_on_a_bare_database(self, fig1_dirty, fig1_gt):
        from repro.workloads import EX1

        session = repro.api.open_session(
            fig1_dirty, EX1, PerfectOracle(fig1_gt)
        )
        session.manager.run_all()
        assert session.report is not None
        assert session.state.value == "committed"

    def test_serve_returns_a_manager(self, fig1_dirty):
        manager = repro.api.serve(fig1_dirty, max_concurrent=2)
        assert manager.database is fig1_dirty
        assert manager.max_concurrent == 2
