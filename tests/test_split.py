"""Unit tests for the split strategies (Section 5.2)."""

import random

import pytest

from repro.core.split import (
    SPLIT_STRATEGIES,
    MinCutSplit,
    NaiveSplit,
    ProvenanceSplit,
    RandomSplit,
)
from repro.query.parser import parse_query
from repro.query.subquery import embed_answer, is_subquery
from repro.workloads import EX2

FOUR_ATOMS = parse_query(
    "q(x, y, z, w) :- r1(x, y), r2(y, z), r3(z, w), r4(z, v), z != x, w != x."
)


@pytest.fixture
def db(fig1_dirty):
    return fig1_dirty


class TestNaive:
    def test_never_splits(self, db, rng):
        assert NaiveSplit().split(FOUR_ATOMS, db, rng) == []
        assert not NaiveSplit().can_split(FOUR_ATOMS)


class TestRandom:
    def test_two_nonempty_sides(self, db, rng):
        for _ in range(10):
            parts = RandomSplit().split(FOUR_ATOMS, db, rng)
            assert len(parts) == 2
            assert all(len(p.atoms) >= 1 for p in parts)
            assert len(parts[0].atoms) + len(parts[1].atoms) == 4

    def test_single_atom_cannot_split(self, db, rng):
        q = parse_query("q(x) :- r1(x, y).")
        assert RandomSplit().split(q, db, rng) == []

    def test_sides_are_subqueries(self, db, rng):
        for part in RandomSplit().split(FOUR_ATOMS, db, rng):
            assert is_subquery(part, FOUR_ATOMS)


class TestMinCut:
    def test_splits_along_weak_edge(self, db, rng):
        # r4 connects only via z (weight 1+1); the bridge r2-r3 carries
        # z plus the z!=x inequality.  Check both sides non-empty and
        # every returned object a genuine subquery.
        parts = MinCutSplit().split(FOUR_ATOMS, db, rng)
        assert len(parts) == 2
        for part in parts:
            assert is_subquery(part, FOUR_ATOMS)

    def test_disconnected_query_splits_components(self, db, rng):
        q = parse_query("q(a, b) :- teams(a, c1), games(d, b, l, s, r).")
        parts = MinCutSplit().split(q, db, rng)
        atom_sets = {tuple(sorted(a.relation for a in p.atoms)) for p in parts}
        assert atom_sets == {("teams",), ("games",)}

    def test_deterministic(self, db):
        a = MinCutSplit().split(FOUR_ATOMS, db, random.Random(0))
        b = MinCutSplit().split(FOUR_ATOMS, db, random.Random(99))
        assert [p.atoms for p in a] == [p.atoms for p in b]


class TestProvenance:
    def test_splits_at_picky_join(self, db, rng):
        # EX2|Pirlo blocks at the teams atom on the Figure 1 instance.
        embedded = embed_answer(EX2, ("Andrea Pirlo",))
        parts = ProvenanceSplit().split(embedded, db, rng)
        assert len(parts) == 2
        relations = [tuple(a.relation for a in p.atoms) for p in parts]
        assert any("teams" in rels for rels in relations)

    def test_fallback_when_no_picky_join(self, db, rng):
        # A satisfiable query has no picky join; Provenance defers to the
        # fallback (Random) rather than refusing to split.
        q = parse_query('q(x) :- teams(x, c), games(d, x, l, s, r).')
        parts = ProvenanceSplit().split(q, db, rng)
        assert len(parts) == 2

    def test_custom_fallback_used(self, db, rng):
        class Marker(RandomSplit):
            called = False

            def split(self, query, database, rng):
                Marker.called = True
                return super().split(query, database, rng)

        q = parse_query('q(x) :- teams(x, c), games(d, x, l, s, r).')
        ProvenanceSplit(fallback=Marker()).split(q, db, rng)
        assert Marker.called


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(SPLIT_STRATEGIES) == {"Naive", "Random", "MinCut", "Provenance"}

    def test_registry_instantiable(self, db, rng):
        q = parse_query('q(x) :- teams(x, c), games(d, x, l, s, r), goals(p, d).')
        for cls in SPLIT_STRATEGIES.values():
            strategy = cls()
            parts = strategy.split(q, db, rng)
            assert isinstance(parts, list)
