"""Dispatch under network-shaped faults (ISSUE 8, satellite 3).

Three hostile-client shapes against the live service:

* **slow-loris** — a connection that dribbles (or stalls) its request
  head/body must be dropped with 408 after the read timeout instead of
  pinning a connection slot;
* **duplicate answer POSTs** — at-least-once delivery: a replayed
  answer is acknowledged (``duplicate`` / ``stale``) without double
  counting the vote;
* **worker reconnect after timeout** — a worker that leases a question
  and vanishes costs one lease expiry; after reconnecting it (or a
  peer) re-leases the question and the session still converges at the
  in-process question cost.
"""

from __future__ import annotations

import socket
import time

from repro.dispatch.policy import RetryPolicy
from repro.oracle.perfect import PerfectOracle
from repro.server.manager import SessionManager
from repro.service.broker import QuestionBroker
from repro.service.client import ServiceClient, WorkerClient, answer_question
from repro.shard import wire
from service_harness import ServiceHarness

from repro.service.cli import build_workload
from test_service import in_process_baseline


def _recv_all(sock: socket.socket, timeout: float = 5.0) -> bytes:
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    except socket.timeout:
        pass
    return b"".join(chunks)


class TestSlowLoris:
    def _harness(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        return ServiceHarness(manager, read_timeout=0.5), workload

    def test_stalled_request_head_gets_408(self):
        harness, _ = self._harness()
        with harness:
            with socket.create_connection((harness.host, harness.port)) as sock:
                sock.sendall(b"GET /v1/healthz HT")  # ...and never finish
                data = _recv_all(sock, timeout=3.0)
            assert b"408" in data.split(b"\r\n", 1)[0]

    def test_stalled_request_body_gets_408(self):
        harness, _ = self._harness()
        with harness:
            with socket.create_connection((harness.host, harness.port)) as sock:
                head = (
                    b"POST /v1/sessions HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 500\r\n\r\n"
                )
                sock.sendall(head + b'{"tenant": "slow', )  # 484 bytes never come
                data = _recv_all(sock, timeout=3.0)
            assert b"408" in data.split(b"\r\n", 1)[0]

    def test_malformed_content_length_gets_400(self):
        harness, _ = self._harness()
        with harness:
            for bad in (b"abc", b"-5"):
                with socket.create_connection((harness.host, harness.port)) as sock:
                    sock.sendall(
                        b"POST /v1/worker/answer HTTP/1.1\r\nHost: x\r\n"
                        b"Content-Length: " + bad + b"\r\n\r\n"
                    )
                    data = _recv_all(sock, timeout=3.0)
                assert b"400" in data.split(b"\r\n", 1)[0], data

    def test_dribbled_second_head_bounded_by_read_timeout_not_idle(self):
        # read_timeout=0.5 but idle_timeout keeps its 120 s default: a
        # keep-alive client that completes one request and then
        # dribbles the next head must be dropped on the *read* deadline
        harness, _ = self._harness()
        with harness:
            with socket.create_connection((harness.host, harness.port)) as sock:
                sock.sendall(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                sock.settimeout(5.0)
                first = sock.recv(4096)
                assert first.startswith(b"HTTP/1.1 200"), first
                sock.sendall(b"G")  # one byte of the next head, then stall
                start = time.monotonic()
                data = _recv_all(sock, timeout=10.0)
                elapsed = time.monotonic() - start
            assert b"408" in data.split(b"\r\n", 1)[0], data
            assert elapsed < 5.0, f"dribbled head held its slot for {elapsed:.1f}s"

    def test_server_stays_responsive_during_the_attack(self):
        harness, _ = self._harness()
        with harness:
            attackers = [
                socket.create_connection((harness.host, harness.port))
                for _ in range(8)
            ]
            try:
                for sock in attackers:
                    sock.sendall(b"GET /v1/stat")  # all stalled mid-head
                with ServiceClient(harness.host, harness.port) as client:
                    assert client.healthz()["role"] == "primary"
            finally:
                for sock in attackers:
                    sock.close()


class TestDuplicateAnswers:
    def test_replayed_answer_post_is_idempotent(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        oracle = PerfectOracle(workload.ground_truth)
        with ServiceHarness(manager) as harness:
            with ServiceClient(harness.host, harness.port) as client:
                client.open(workload.queries[0])
                # lease the first question by hand
                doc = client._http.request(
                    "GET", "/v1/worker/feed?worker=w0&wait=20"
                )
                lease = doc["question"]
                assert lease is not None
                reply = answer_question(
                    oracle, wire.question_from_obj(lease["question"])
                )
                payload = {"worker": "w0", "qid": lease["qid"], "reply": reply}
                first = client._http.request("POST", "/v1/worker/answer", payload)
                assert first["status"] == "accepted"
                # at-least-once redelivery: same worker, same qid
                second = client._http.request("POST", "/v1/worker/answer", payload)
                assert second["status"] == "duplicate"
                third = client._http.request("POST", "/v1/worker/answer", payload)
                assert third["status"] == "duplicate"
                stats = client.stats()["broker"]
                assert stats["duplicate_answers"] == 2
                # exactly one vote was counted
                assert stats["resolved"] == 1

    def test_answer_after_resolution_is_stale_not_counted(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        oracle = PerfectOracle(workload.ground_truth)
        with ServiceHarness(manager, votes_per_closed=1) as harness:
            with ServiceClient(harness.host, harness.port) as client:
                client.open(workload.queries[0])
                lease = client._http.request(
                    "GET", "/v1/worker/feed?worker=w0&wait=20"
                )["question"]
                reply = answer_question(
                    oracle, wire.question_from_obj(lease["question"])
                )
                accepted = client._http.request(
                    "POST", "/v1/worker/answer",
                    {"worker": "w0", "qid": lease["qid"], "reply": reply},
                )
                assert accepted["status"] == "accepted" and accepted["resolved"]
                # a different worker answering the already-resolved question
                stale = client._http.request(
                    "POST", "/v1/worker/answer",
                    {"worker": "w1", "qid": lease["qid"], "reply": reply},
                )
                assert stale["status"] == "stale"
                assert client.stats()["broker"]["stale_answers"] == 1

    def test_unknown_question_is_acknowledged_not_an_error(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        with ServiceHarness(manager) as harness:
            with ServiceClient(harness.host, harness.port) as client:
                doc = client._http.request(
                    "POST", "/v1/worker/answer",
                    {"worker": "w0", "qid": 424242, "reply": {"value": True}},
                )
                assert doc["status"] == "unknown"


class TestBrokerBoundedMemory:
    """Resolved questions age out of a bounded tombstone window instead
    of accumulating (and being rescanned by every lease) forever."""

    def test_resolved_questions_prune_to_the_tombstone_window(self):
        broker = QuestionBroker(
            policy=RetryPolicy(timeout=30.0), tombstone_limit=4
        )
        qids = []
        for i in range(20):
            question = broker.submit("verify_fact", {"i": i}, None)
            outcome = broker.answer("w0", question.qid, True, now=0.0)
            assert outcome["status"] == "accepted"
            qids.append(question.qid)
        assert broker.pending_count() == 0
        # only the newest tombstone_limit resolutions are remembered
        assert len(broker._questions) == 4
        assert broker.stats()["resolved"] == 20

        # idempotency survives within the window...
        assert broker.answer("w0", qids[-1], True, 0.0)["status"] == "duplicate"
        assert broker.answer("w1", qids[-1], True, 0.0)["status"] == "stale"
        # ...and degrades to an acknowledged 'unknown' beyond it
        assert broker.answer("w0", qids[0], True, 0.0)["status"] == "unknown"

    def test_lease_scan_sees_pending_work_among_tombstones(self):
        broker = QuestionBroker(
            policy=RetryPolicy(timeout=30.0), tombstone_limit=2
        )
        for i in range(10):
            question = broker.submit("verify_fact", {"i": i}, None)
            broker.answer("w0", question.qid, True, now=0.0)
        live = broker.submit("verify_fact", {"i": "live"}, None)
        lease = broker.lease("w1", now=0.0)
        assert lease is not None and lease["qid"] == live.qid
        assert broker.stats()["pending"] == 1
    def test_vanished_worker_lease_expires_and_run_converges_at_parity(self):
        workload = build_workload("figure1")
        query = workload.queries[0]
        expected_digest, expected_cost = in_process_baseline(workload, query)

        manager = SessionManager(workload.dirty.copy(), mode="sync")
        policy = RetryPolicy(
            timeout=0.6, max_retries=5, backoff_base=0.05, backoff_factor=1.0
        )
        with ServiceHarness(manager, policy=policy, tick=0.1) as harness:
            oracle = PerfectOracle(workload.ground_truth)
            with ServiceClient(harness.host, harness.port) as client:
                client.open(query)
                # the worker leases the first question... and vanishes
                ghost_lease = client._http.request(
                    "GET", "/v1/worker/feed?worker=w0&wait=20"
                )["question"]
                assert ghost_lease is not None
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if client.stats()["broker"]["expired_leases"] >= 1:
                        break
                    time.sleep(0.1)
                assert client.stats()["broker"]["expired_leases"] >= 1

                # the same worker reconnects and behaves from now on
                worker = WorkerClient(harness.host, harness.port, "w0", oracle)
                worker.start_thread()
                try:
                    doc = client.wait(0, timeout=120.0)
                    digest = client.digest()["digest"]
                finally:
                    worker.stop()
                assert doc["state"] == "committed", doc
                assert doc["report"]["converged"] is True
                # the timeout cost a retry, never a wrong/extra answer:
                # digest and question cost match the in-process run
                assert digest == expected_digest
                assert doc["cost"] == expected_cost

    def test_reroute_prefers_a_fresh_worker_for_the_retry(self):
        workload = build_workload("figure1")
        manager = SessionManager(workload.dirty.copy(), mode="sync")
        policy = RetryPolicy(
            timeout=0.5, max_retries=4, backoff_base=0.05, backoff_factor=1.0,
            reroute=True,
        )
        with ServiceHarness(manager, policy=policy, tick=0.1) as harness:
            with ServiceClient(harness.host, harness.port) as client:
                client.open(workload.queries[0])
                ghost = client._http.request(
                    "GET", "/v1/worker/feed?worker=ghost&wait=20"
                )["question"]
                assert ghost is not None
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if client.stats()["broker"]["expired_leases"] >= 1:
                        break
                    time.sleep(0.1)
                # a fresh worker gets the retried question immediately...
                fresh = client._http.request(
                    "GET", "/v1/worker/feed?worker=fresh&wait=20"
                )["question"]
                assert fresh is not None
                assert fresh["qid"] == ghost["qid"]
                assert fresh["attempt"] > ghost["attempt"]
                oracle = PerfectOracle(workload.ground_truth)
                reply = answer_question(
                    oracle, wire.question_from_obj(fresh["question"])
                )
                client._http.request(
                    "POST", "/v1/worker/answer",
                    {"worker": "fresh", "qid": fresh["qid"], "reply": reply},
                )
                worker = WorkerClient(harness.host, harness.port, "fresh", oracle)
                worker.start_thread()
                try:
                    doc = client.wait(0, timeout=120.0)
                finally:
                    worker.stop()
                assert doc["state"] == "committed"
