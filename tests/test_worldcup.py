"""Tests for the World Cup ground-truth generator."""

import pytest

from repro.datasets.worldcup import (
    FINALS,
    TEAMS,
    THIRD_PLACE,
    WorldCupConfig,
    worldcup_database,
    worldcup_schema,
)
from repro.db.tuples import fact
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def db():
    return worldcup_database()


class TestScale:
    def test_paper_scale(self, db):
        # "The Soccer database ... consists of around 5000 tuples."
        assert 4000 <= len(db) <= 6500

    def test_all_relations_populated(self, db):
        for relation in ("games", "teams", "players", "goals", "clubs", "stages"):
            assert db.size(relation) > 0


class TestDeterminism:
    def test_same_seed_same_database(self):
        a = worldcup_database(WorldCupConfig(seed=3))
        b = worldcup_database(WorldCupConfig(seed=3))
        assert a == b

    def test_different_seed_differs(self):
        a = worldcup_database(WorldCupConfig(seed=3))
        b = worldcup_database(WorldCupConfig(seed=4))
        assert a != b


class TestEmbeddedHistory:
    def test_all_finals_present(self, db):
        for _, date, winner, runner_up, score in FINALS:
            assert fact("games", date, winner, runner_up, "Final", score) in db

    def test_third_place_games_present(self, db):
        third = [f for f in db.facts("games") if f.values[3] == "ThirdPlace"]
        assert len(third) == len(THIRD_PLACE)

    def test_paper_2006_final_score(self, db):
        # The paper's Figure 1 records the 2006 final as 5:3.
        assert fact("games", "09.07.2006", "ITA", "FRA", "Final", "5:3") in db

    def test_teams_have_continents(self, db):
        for team, continent in TEAMS.items():
            assert fact("teams", team, continent) in db

    def test_goetze_scored_2014_final(self, db):
        assert fact("goals", "Mario Goetze", "13.07.2014") in db


class TestConsistency:
    def test_every_game_team_is_registered(self, db):
        teams = {f.values[0] for f in db.facts("teams")}
        for game in db.facts("games"):
            assert game.values[1] in teams
            assert game.values[2] in teams

    def test_every_goal_scorer_is_a_player(self, db):
        players = {f.values[0] for f in db.facts("players")}
        for goal in db.facts("goals"):
            assert goal.values[0] in players

    def test_every_goal_belongs_to_a_game(self, db):
        dates = {f.values[0] for f in db.facts("games")}
        for goal in db.facts("goals"):
            assert goal.values[1] in dates

    def test_goals_match_scores(self, db):
        # Per game, total goals recorded equals the regulation score sum
        # (pinned scorers included).
        from collections import Counter

        by_date = Counter(goal.values[1] for goal in db.facts("goals"))
        for game in db.facts("games"):
            date, _, _, _, result = game.values
            left, right = result.split(" ")[0].split(":")
            assert by_date[date] <= int(left) + int(right)

    def test_stage_classification(self, db):
        phases = dict(f.values for f in db.facts("stages"))
        assert phases["Final"] == "KO"
        assert phases["Group"] == "GROUP"
        for game in db.facts("games"):
            assert game.values[3] in phases

    def test_player_team_is_registered(self, db):
        teams = {f.values[0] for f in db.facts("teams")}
        for player in db.facts("players"):
            assert player.values[1] in teams


class TestGroundTruthSemantics:
    def test_winners_of_two_finals(self, db):
        q = parse_query(
            'q(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
            "d1 != d2."
        )
        multi_champions = {a[0] for a in evaluate(q, db)}
        assert multi_champions == {"BRA", "GER", "ITA", "ARG", "URU"}

    def test_ex1_true_result(self, db):
        from repro.workloads import EX1

        # European teams with >= 2 titles: ITA (4) and GER (4).
        assert evaluate(EX1, db) == {("ITA",), ("GER",)}

    def test_schema_roundtrip(self):
        schema = worldcup_schema()
        assert schema.arity("games") == 5
        assert schema.arity("players") == 4
