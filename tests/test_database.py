"""Unit tests for repro.db.database."""

import pytest

from repro.db.database import ANY, Database
from repro.db.edits import delete, insert
from repro.db.schema import Schema, SchemaError
from repro.db.tuples import fact


@pytest.fixture
def schema():
    return Schema.from_dict({"teams": ["team", "continent"], "games": ["w", "l"]})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        [
            fact("teams", "GER", "EU"),
            fact("teams", "BRA", "SA"),
            fact("games", "GER", "ARG"),
            fact("games", "GER", "BRA"),
        ],
    )


class TestBasicSetInterface:
    def test_len_and_contains(self, db):
        assert len(db) == 4
        assert fact("teams", "GER", "EU") in db
        assert fact("teams", "GER", "SA") not in db

    def test_contains_non_fact(self, db):
        assert "not a fact" not in db

    def test_iteration(self, db):
        assert len(list(db)) == 4

    def test_facts_snapshot(self, db):
        snapshot = db.facts("teams")
        db.delete(fact("teams", "GER", "EU"))
        assert fact("teams", "GER", "EU") in snapshot  # snapshot unchanged

    def test_size(self, db):
        assert db.size("teams") == 2
        assert db.size("games") == 2


class TestMutation:
    def test_insert_and_idempotence(self, db):
        f = fact("teams", "ITA", "EU")
        assert db.insert(f) is True
        assert db.insert(f) is False  # idempotent
        assert len(db) == 5

    def test_delete_and_idempotence(self, db):
        f = fact("teams", "GER", "EU")
        assert db.delete(f) is True
        assert db.delete(f) is False
        assert f not in db

    def test_insert_validates_relation(self, db):
        with pytest.raises(SchemaError):
            db.insert(fact("players", "Pele"))

    def test_insert_validates_arity(self, db):
        with pytest.raises(SchemaError):
            db.insert(fact("teams", "GER"))

    def test_apply_edits(self, db):
        changed = db.apply(
            [
                insert(fact("teams", "ITA", "EU")),
                delete(fact("teams", "BRA", "SA")),
                insert(fact("teams", "ITA", "EU")),  # no-op repeat
            ]
        )
        assert changed == 2
        assert fact("teams", "ITA", "EU") in db
        assert fact("teams", "BRA", "SA") not in db

    def test_bulk_load_matches_insert_loop(self, schema, db):
        rows = [("ITA", "EU"), ("FRA", "EU"), ("GER", "EU")]  # GER is a dup
        reference = db.copy()
        for row in rows:
            reference.insert(fact("teams", *row))
        assert db.bulk_load("teams", rows) == 2
        assert db == reference
        assert db.state_digest() == reference.state_digest()
        assert set(db.match("teams", (ANY, "EU"))) == set(
            reference.match("teams", (ANY, "EU"))
        )

    def test_bulk_load_validates(self, db):
        with pytest.raises(SchemaError):
            db.bulk_load("players", [("Pele",)])
        with pytest.raises(SchemaError):
            db.bulk_load("teams", [("GER",)])

    def test_bulk_load_bumps_version_once_per_effective_batch(self, db):
        version = db.version
        db.bulk_load("teams", [("ITA", "EU"), ("FRA", "EU")])
        assert db.version == version + 1
        db.bulk_load("teams", [("ITA", "EU")])  # all duplicates: no bump
        assert db.version == version + 1

    def test_bulk_load_notifies_listeners(self, db):
        from repro.db.database import DatabaseListener

        events = []

        class Recorder(DatabaseListener):
            def after_change(self, database, edit):
                events.append((edit.kind.value, edit.fact))

        db.subscribe(Recorder())
        assert db.bulk_load("teams", [("ITA", "EU"), ("GER", "EU")]) == 1
        assert events == [("+", fact("teams", "ITA", "EU"))]

    def test_bulk_load_respects_fork_snapshots(self, db):
        forked = db.fork()
        before = set(forked.facts("teams"))
        db.bulk_load("teams", [("ITA", "EU")])
        assert fact("teams", "ITA", "EU") in db
        assert set(forked.facts("teams")) == before


class TestMatching:
    def test_match_all_wildcards(self, db):
        assert len(list(db.match("teams", [ANY, ANY]))) == 2

    def test_match_bound_position(self, db):
        hits = list(db.match("games", ["GER", ANY]))
        assert len(hits) == 2

    def test_match_fully_bound(self, db):
        hits = list(db.match("teams", ["GER", "EU"]))
        assert hits == [fact("teams", "GER", "EU")]

    def test_match_no_hits(self, db):
        assert list(db.match("teams", ["XXX", ANY])) == []

    def test_match_multiple_bound(self, db):
        assert list(db.match("games", ["GER", "BRA"])) == [fact("games", "GER", "BRA")]

    def test_match_reflects_deletion(self, db):
        db.delete(fact("games", "GER", "ARG"))
        assert list(db.match("games", [ANY, "ARG"])) == []

    def test_match_wrong_arity(self, db):
        with pytest.raises(SchemaError):
            list(db.match("teams", [ANY]))

    def test_count_matches(self, db):
        assert db.count_matches("games", ["GER", ANY]) == 2


class TestDomains:
    def test_active_domain_column(self, db):
        assert db.active_domain("teams", 1) == {"EU", "SA"}

    def test_active_domain_relation(self, db):
        assert db.active_domain("teams") == {"GER", "BRA", "EU", "SA"}

    def test_active_domain_everything(self, db):
        assert "ARG" in db.active_domain()

    def test_domain_values_by_tag(self, schema):
        tagged = Schema(
            [
                type(schema.relation("teams"))(
                    "teams", ("team", "continent"), ("team", "cont")
                ),
                type(schema.relation("teams"))("games", ("w", "l"), ("team", "team")),
            ]
        )
        db = Database(
            tagged,
            [fact("teams", "GER", "EU"), fact("games", "BRA", "ARG")],
        )
        assert db.domain_values("team") == {"GER", "BRA", "ARG"}

    def test_active_domain_updates_on_delete(self, db):
        db.delete(fact("teams", "BRA", "SA"))
        assert db.active_domain("teams", 1) == {"EU"}


class TestComparison:
    def test_distance_symmetric(self, db, schema):
        other = db.copy()
        other.insert(fact("teams", "ITA", "EU"))
        other.delete(fact("teams", "BRA", "SA"))
        assert db.distance(other) == 2
        assert other.distance(db) == 2

    def test_distance_zero_for_copies(self, db):
        assert db.distance(db.copy()) == 0

    def test_symmetric_difference(self, db):
        other = db.copy()
        other.insert(fact("teams", "ITA", "EU"))
        assert db.symmetric_difference(other) == {fact("teams", "ITA", "EU")}

    def test_equality(self, db):
        assert db == db.copy()
        other = db.copy()
        other.delete(fact("teams", "GER", "EU"))
        assert db != other

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.insert(fact("teams", "ITA", "EU"))
        assert fact("teams", "ITA", "EU") not in db

    def test_repr_mentions_sizes(self, db):
        assert "teams:2" in repr(db)


class TestVersionsAndListeners:
    def test_version_bumps_only_on_effective_edits(self, db):
        v = db.version
        db.insert(fact("teams", "ITA", "EU"))
        assert db.version == v + 1
        db.insert(fact("teams", "ITA", "EU"))  # already present: no-op
        assert db.version == v + 1
        db.delete(fact("teams", "ITA", "EU"))
        assert db.version == v + 2
        db.delete(fact("teams", "ITA", "EU"))  # already gone: no-op
        assert db.version == v + 2

    def test_relation_versions_are_independent(self, db):
        teams = db.relation_version("teams")
        games = db.relation_version("games")
        db.insert(fact("teams", "ITA", "EU"))
        assert db.relation_version("teams") == teams + 1
        assert db.relation_version("games") == games

    def test_copy_does_not_inherit_listeners(self, db):
        from repro.db.database import DatabaseListener

        events = []

        class Recorder(DatabaseListener):
            def after_change(self, database, edit):
                events.append(edit)

        db.subscribe(Recorder())
        clone = db.copy()
        clone.insert(fact("teams", "FRA", "EU"))
        assert events == []
        assert fact("teams", "FRA", "EU") not in db

    def test_listener_sees_before_and_after(self, db):
        from repro.db.database import DatabaseListener

        events = []

        class Recorder(DatabaseListener):
            def before_change(self, database, edit):
                events.append(("before", edit.kind.value, edit.fact in database))

            def after_change(self, database, edit):
                events.append(("after", edit.kind.value, edit.fact in database))

        recorder = Recorder()
        db.subscribe(recorder)
        db.insert(fact("teams", "ITA", "EU"))
        db.delete(fact("teams", "ITA", "EU"))
        assert events == [
            ("before", "+", False),  # fact not yet in the database
            ("after", "+", True),
            ("before", "-", True),  # still present when notified
            ("after", "-", False),
        ]

    def test_listener_not_notified_for_noop_edits(self, db):
        from repro.db.database import DatabaseListener

        events = []

        class Recorder(DatabaseListener):
            def after_change(self, database, edit):
                events.append(edit)

        db.subscribe(Recorder())
        db.insert(fact("teams", "GER", "EU"))  # already present
        db.delete(fact("teams", "ZZZ", "EU"))  # never there
        assert events == []

    def test_unsubscribe_stops_notifications(self, db):
        from repro.db.database import DatabaseListener

        events = []

        class Recorder(DatabaseListener):
            def after_change(self, database, edit):
                events.append(edit)

        recorder = Recorder()
        db.subscribe(recorder)
        db.insert(fact("teams", "ITA", "EU"))
        db.unsubscribe(recorder)
        db.insert(fact("teams", "FRA", "EU"))
        assert len(events) == 1

    def test_edit_apply_goes_through_listeners(self, db):
        from repro.db.database import DatabaseListener
        from repro.db.edits import insert as make_insert

        events = []

        class Recorder(DatabaseListener):
            def after_change(self, database, edit):
                events.append((edit.kind.value, edit.fact))

        db.subscribe(Recorder())
        make_insert(fact("teams", "ITA", "EU")).apply(db)
        assert events == [("+", fact("teams", "ITA", "EU"))]

    def test_distinct_count_tracks_index(self, db):
        assert db.distinct_count("teams", 1) == 2  # EU, SA
        db.delete(fact("teams", "BRA", "SA"))
        assert db.distinct_count("teams", 1) == 1
        db.delete(fact("teams", "GER", "EU"))
        assert db.distinct_count("teams", 1) == 0
        assert db.distinct_count("teams", 0) == 0
