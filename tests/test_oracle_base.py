"""Unit tests for the accounting oracle (caching, cost model)."""

from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle, open_question_cost, result_question_cost
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.ast import Var
from repro.query.parser import parse_query
from repro.workloads import EX1


class TestCaching:
    def test_fact_question_asked_once(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        f = fact("teams", "ESP", "EU")
        assert oracle.verify_fact(f) is True
        assert oracle.verify_fact(f) is True
        assert oracle.log.question_count == 1  # cache hit is free

    def test_answer_question_asked_once(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        assert oracle.verify_answer(EX1, ("GER",)) is True
        assert oracle.verify_answer(EX1, ("GER",)) is True
        assert oracle.log.count_of([QuestionKind.VERIFY_ANSWER]) == 1

    def test_remember_fact_preempts_question(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        f = fact("teams", "ESP", "EU")
        oracle.remember_fact(f, False)  # inferred knowledge (even if wrong)
        assert oracle.verify_fact(f) is False
        assert oracle.log.question_count == 0

    def test_knows_fact(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        f = fact("teams", "ESP", "EU")
        assert not oracle.knows_fact(f)
        oracle.verify_fact(f)
        assert oracle.knows_fact(f)
        assert oracle.known_fact_value(f) is True

    def test_forget_clears_cache(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        f = fact("teams", "ESP", "EU")
        oracle.verify_fact(f)
        oracle.forget()
        oracle.verify_fact(f)
        assert oracle.log.question_count == 2  # re-asked after forget


class TestAnswerCacheStructuralKey:
    """Regression: the answer cache was keyed by ``(id(query), answer)``.

    Object ids are recycled, so a dead query's id could alias a fresh,
    structurally different query to a stale verdict — and two equal
    queries built separately (e.g. by concurrent dispatch tasks) never
    shared their verdicts.  The cache is now keyed by the query *value*.
    """

    EX1_TEXT = (
        'ex1(x) :- games(d1, x, y, "Final", u1), '
        'games(d2, x, z, "Final", u2), teams(x, "EU"), d1 != d2.'
    )

    def test_equal_queries_share_cached_verdicts(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        first = parse_query(self.EX1_TEXT)
        second = parse_query(self.EX1_TEXT)
        assert first == second and first is not second
        assert oracle.verify_answer(first, ("GER",)) is True
        # a distinct-but-equal query object hits the same cache entry
        assert oracle.verify_answer(second, ("GER",)) is True
        assert oracle.log.count_of([QuestionKind.VERIFY_ANSWER]) == 1

    def test_cache_entries_never_alias_distinct_questions(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        other = parse_query('q(x) :- teams(x, "EU").')
        assert oracle.verify_answer(EX1, ("GER",)) is True
        assert oracle.cached_answer(other, ("GER",)) is None
        assert oracle.cached_answer(EX1, ("BRA",)) is None
        oracle.verify_answer(other, ("GER",))
        assert oracle.log.count_of([QuestionKind.VERIFY_ANSWER]) == 2

    def test_remember_answer_preempts_question(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        oracle.remember_answer(EX1, ("GER",), False)  # out-of-band verdict
        assert oracle.verify_answer(parse_query(self.EX1_TEXT), ("GER",)) is False
        assert oracle.log.question_count == 0
        assert oracle.cached_answer(EX1, ("GER",)) is False


class TestCosts:
    def test_closed_cost_one(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        oracle.verify_fact(fact("teams", "ESP", "EU"))
        oracle.verify_answer(EX1, ("GER",))
        oracle.verify_candidate(EX1, {Var("x"): "GER"})
        assert oracle.log.total_cost == 3

    def test_complete_assignment_cost_counts_filled_vars(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        partial = {Var("x"): "GER"}
        result = oracle.complete_assignment(EX1, partial)
        assert result is not None
        filled = len(EX1.variables()) - 1
        assert oracle.log.total_cost == filled

    def test_complete_assignment_null_costs_one(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        assert oracle.complete_assignment(EX1, {Var("x"): "BRA"}) is None
        assert oracle.log.total_cost == 1

    def test_complete_result_cost(self, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        answer = oracle.complete_result(EX1, [("GER",)])
        assert answer == ("ITA",)
        assert oracle.log.cost_of([QuestionKind.COMPLETE_RESULT]) == 1


class TestCostHelpers:
    def test_open_question_cost_null(self):
        q = parse_query("q(x) :- r(x, y).")
        assert open_question_cost(q, {}, None) == 1

    def test_open_question_cost_counts_new_vars(self):
        q = parse_query("q(x) :- r(x, y, z).")
        x, y, z = Var("x"), Var("y"), Var("z")
        result = {x: 1, y: 2, z: 3}
        assert open_question_cost(q, {x: 1}, result) == 2
        assert open_question_cost(q, {}, result) == 3

    def test_result_question_cost(self):
        q = parse_query("q(x, y) :- r(x, y).")
        assert result_question_cost(q, (1, 2)) == 2
        assert result_question_cost(q, None) == 1

    def test_result_question_cost_repeated_head_var(self):
        q = parse_query("q(x, x) :- r(x, y).")
        assert result_question_cost(q, (1, 1)) == 1  # unique variables
