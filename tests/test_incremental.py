"""The incremental evaluation engine: delta maintenance == from-scratch.

Four layers of checks:

1. unit behavior of :class:`IncrementalAnswers` (delta bookkeeping,
   negation revoke/restore, fallback snapshot mode, lifecycle);
2. the property-based differential — random schema/instance/query plus a
   random edit sequence; after *every* edit the maintained answers,
   supports, and witness sets must equal a from-scratch
   :class:`Evaluator`, including queries with inequalities and negated
   atoms;
3. whole-loop equivalence — ``QOCO`` / ``ParallelQOCO`` with
   ``use_incremental`` on and off produce bit-identical answers, edits,
   and oracle-question logs;
4. telemetry accounting of the new counters.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from qoco_strategies import databases, facts, queries
from repro.core.parallel import ParallelQOCO
from repro.core.qoco import QOCO, QOCOConfig
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact, fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.ast import Atom, Query, Var
from repro.query.evaluator import Evaluator, evaluate, instantiate_head
from repro.query.incremental import (
    IncrementalAnswers,
    assignments_using_fact,
    negation_binding,
    supports_incremental,
)
from repro.query.union import UnionQuery
from repro.telemetry import telemetry_session
from repro.workloads import EX1

DIFFERENTIAL_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def scratch_state(query: Query, database: Database):
    """(answers, support per answer, witness set per answer) from scratch."""
    evaluator = Evaluator(query, database)
    answers = evaluator.answers()
    support: dict = {}
    for assignment in evaluator.assignments():
        answer = instantiate_head(query, assignment)
        support[answer] = support.get(answer, 0) + 1
    witnesses = {
        answer: {frozenset(w) for w in evaluator.witnesses(answer)}
        for answer in answers
    }
    return answers, support, witnesses


def assert_engine_matches_scratch(engine: IncrementalAnswers, query, database):
    answers, support, witnesses = scratch_state(query, database)
    assert engine.answers() == answers
    assert len(engine) == len(answers)
    for answer in answers:
        assert answer in engine
        assert engine.support(answer) == support[answer]
        assert set(engine.witnesses(answer)) == witnesses[answer]
        assert engine.witness_count(answer) == len(witnesses[answer])


# ---------------------------------------------------------------------------
# unit behavior
# ---------------------------------------------------------------------------


class TestIncrementalAnswersUnit:
    def test_tracks_simple_inserts_and_deletes(self, fig1_dirty):
        engine = IncrementalAnswers(EX1, fig1_dirty)
        new_game = fact("games", "01.01.2030", "GER", "BRA", "Final", "2:1")
        fig1_dirty.insert(new_game)
        assert_engine_matches_scratch(engine, EX1, fig1_dirty)
        fig1_dirty.delete(new_game)
        assert_engine_matches_scratch(engine, EX1, fig1_dirty)

    def test_noop_edits_change_nothing(self, fig1_dirty):
        engine = IncrementalAnswers(EX1, fig1_dirty)
        before = engine.answers()
        present = next(iter(fig1_dirty.facts("games")))
        fig1_dirty.insert(present)  # already there: no notification at all
        absent = fact("games", "09.09.2099", "ZZZ", "YYY", "Group", "0:0")
        fig1_dirty.delete(absent)
        assert engine.answers() == before

    def test_rejects_union_queries(self, fig1_dirty):
        union = UnionQuery((EX1,))
        assert not supports_incremental(union)
        with pytest.raises(TypeError):
            IncrementalAnswers(union, fig1_dirty)  # type: ignore[arg-type]

    def test_close_detaches_and_reads_still_correct(self, fig1_dirty):
        engine = IncrementalAnswers(EX1, fig1_dirty)
        engine.close()
        new_game = fact("games", "01.01.2030", "GER", "BRA", "Final", "2:1")
        fig1_dirty.insert(new_game)
        # no longer subscribed: the version stamp forces a full recompute
        assert_engine_matches_scratch(engine, EX1, fig1_dirty)
        engine.close()  # idempotent

    def test_context_manager_unsubscribes(self, fig1_dirty):
        with IncrementalAnswers(EX1, fig1_dirty) as engine:
            assert engine._subscribed
        assert not engine._subscribed

    def test_snapshot_mode_recomputes_on_version_change(self, fig1_dirty):
        engine = IncrementalAnswers(EX1, fig1_dirty, subscribe=False)
        with telemetry_session() as (hub, _):
            new_game = fact("games", "01.01.2030", "GER", "BRA", "Final", "2:1")
            fig1_dirty.insert(new_game)
            assert_engine_matches_scratch(engine, EX1, fig1_dirty)
            assert hub.counter("incremental.full_recompute") >= 1
            assert hub.counter("incremental.delta_applied") == 0


class TestNegationDeltas:
    SCHEMA = Schema(
        [RelationSchema("r", ("p", "q")), RelationSchema("b", ("p",))]
    )

    def _query(self) -> Query:
        # q(x) :- r(x, y), not b(x).
        return Query(
            head=(Var("x"),),
            atoms=(Atom("r", (Var("x"), Var("y"))),),
            negated_atoms=(Atom("b", (Var("x"),)),),
            name="neg",
        )

    def test_insert_into_negated_relation_revokes_answer(self):
        db = Database(self.SCHEMA, [Fact("r", ("1", "2"))])
        engine = IncrementalAnswers(self._query(), db)
        assert engine.answers() == {("1",)}
        with telemetry_session() as (hub, _):
            db.insert(Fact("b", ("1",)))
            assert engine.answers() == set()
            assert hub.counter("incremental.delta_applied") == 1

    def test_delete_from_negated_relation_restores_answer(self):
        db = Database(
            self.SCHEMA, [Fact("r", ("1", "2")), Fact("b", ("1",))]
        )
        engine = IncrementalAnswers(self._query(), db)
        assert engine.answers() == set()
        db.delete(Fact("b", ("1",)))
        assert engine.answers() == {("1",)}
        assert engine.witnesses(("1",)) == [frozenset({Fact("r", ("1", "2"))})]

    def test_restore_only_when_last_blocker_leaves(self):
        # two blocking facts match the same negated atom via a wildcard
        schema = Schema(
            [RelationSchema("r", ("p",)), RelationSchema("b", ("p", "q"))]
        )
        query = Query(
            head=(Var("x"),),
            atoms=(Atom("r", (Var("x"),)),),
            negated_atoms=(Atom("b", (Var("x"), Var("l1"))),),
            name="neg2",
        )
        db = Database(
            schema,
            [Fact("r", ("1",)), Fact("b", ("1", "a")), Fact("b", ("1", "b"))],
        )
        engine = IncrementalAnswers(query, db)
        assert engine.answers() == set()
        db.delete(Fact("b", ("1", "a")))
        assert engine.answers() == set()  # still blocked by ("1", "b")
        db.delete(Fact("b", ("1", "b")))
        assert engine.answers() == {("1",)}

    def test_relation_in_both_positive_and_negated_position(self):
        # q(x) :- r(x), not r(c): inserting r(c) both adds the witness
        # for answer (c,) and revokes every answer at once.
        schema = Schema([RelationSchema("r", ("p",))])
        query = Query(
            head=(Var("x"),),
            atoms=(Atom("r", (Var("x"),)),),
            negated_atoms=(Atom("r", ("c",)),),
            name="both",
        )
        db = Database(schema, [Fact("r", ("a",))])
        engine = IncrementalAnswers(query, db)
        assert engine.answers() == {("a",)}
        db.insert(Fact("r", ("c",)))
        assert_engine_matches_scratch(engine, query, db)
        assert engine.answers() == set()
        db.delete(Fact("r", ("c",)))
        assert engine.answers() == {("a",)}


class TestNegationBinding:
    def test_binding_separates_shared_and_local(self):
        atom = Atom("t", (Var("x"), Var("l"), Var("l")))
        shared = negation_binding(atom, Fact("t", ("a", "b", "b")), {Var("x")})
        assert shared == {Var("x"): "a"}
        # inconsistent repeated local wildcard: no assignment matches
        assert (
            negation_binding(atom, Fact("t", ("a", "b", "c")), {Var("x")})
            is None
        )

    def test_binding_rejects_constant_mismatch(self):
        atom = Atom("r", ("k", Var("x")))
        assert negation_binding(atom, Fact("r", ("no", "v")), {Var("x")}) is None
        assert negation_binding(atom, Fact("r", ("k", "v")), {Var("x")}) == {
            Var("x"): "v"
        }

    def test_assignments_using_fact_dedupes_across_atoms(self, fig1_dirty):
        # EX1 mentions games twice; a final both atoms can bind must be
        # reported once per distinct assignment.
        evaluator = Evaluator(EX1, fig1_dirty)
        for games_fact in fig1_dirty.facts("games"):
            result = assignments_using_fact(evaluator, games_fact)
            keys = [frozenset(a.items()) for a in result]
            assert len(keys) == len(set(keys))


# ---------------------------------------------------------------------------
# the property-based differential
# ---------------------------------------------------------------------------


class TestDifferential:
    @DIFFERENTIAL_SETTINGS
    @given(
        query=queries(negation=True),
        database=databases(),
        edits=st.lists(
            st.tuples(st.booleans(), facts()), min_size=1, max_size=12
        ),
    )
    def test_engine_matches_scratch_after_every_edit(
        self, query, database, edits
    ):
        engine = IncrementalAnswers(query, database)
        assert_engine_matches_scratch(engine, query, database)
        for is_insert, f in edits:
            if is_insert:
                database.insert(f)
            else:
                database.delete(f)
            assert_engine_matches_scratch(engine, query, database)
        engine.close()

    @DIFFERENTIAL_SETTINGS
    @given(
        query=queries(negation=True),
        database=databases(),
        edits=st.lists(
            st.tuples(st.booleans(), facts()), min_size=1, max_size=8
        ),
    )
    def test_snapshot_fallback_matches_scratch(self, query, database, edits):
        engine = IncrementalAnswers(query, database, subscribe=False)
        for is_insert, f in edits:
            (database.insert if is_insert else database.delete)(f)
            assert_engine_matches_scratch(engine, query, database)

    @DIFFERENTIAL_SETTINGS
    @given(
        query=queries(negation=True),
        database=databases(),
        edits=st.lists(
            st.tuples(st.booleans(), facts()), min_size=1, max_size=12
        ),
    )
    def test_engine_matches_scratch_with_telemetry_on(
        self, query, database, edits
    ):
        with telemetry_session():
            engine = IncrementalAnswers(query, database)
            for is_insert, f in edits:
                (database.insert if is_insert else database.delete)(f)
                assert_engine_matches_scratch(engine, query, database)
            engine.close()


# ---------------------------------------------------------------------------
# whole-loop equivalence: incremental vs full evaluation
# ---------------------------------------------------------------------------


def _corrupt(database: Database, seed: int) -> Database:
    """One random deletion, mirroring the telemetry differential setup."""
    dirty = database.copy()
    rng = random.Random(seed)
    pool = [f for rel in ("r", "s", "t") for f in dirty.facts(rel)]
    if pool:
        dirty.delete(rng.choice(sorted(pool, key=repr)))
    return dirty


class TestCleaningEquivalence:
    def _run_qoco(self, use_incremental: bool, seed: int):
        from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth

        dirty = figure1_dirty()
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        config = QOCOConfig(seed=seed, use_incremental=use_incremental)
        report = QOCO(dirty, oracle, config).clean(EX1)
        return {
            "answers": evaluate(EX1, dirty),
            "edits": [(e.kind.value, e.fact) for e in report.edits],
            "log": report.log.to_dicts(),
            "iterations": report.iterations,
            "removed": report.wrong_answers_removed,
            "added": report.missing_answers_added,
            "converged": report.converged,
        }

    def test_figure1_cleaning_identical(self):
        for seed in (0, 7, 42):
            assert self._run_qoco(True, seed) == self._run_qoco(False, seed)

    def test_parallel_cleaning_identical(self):
        from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth

        def run(use_incremental: bool, seed: int):
            dirty = figure1_dirty()
            oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
            report = ParallelQOCO(
                dirty, oracle, seed=seed, use_incremental=use_incremental
            ).clean(EX1)
            return {
                "answers": evaluate(EX1, dirty),
                "edits": [(e.kind.value, e.fact) for e in report.edits],
                "log": report.log.to_dicts(),
                "rounds": report.rounds,
                "converged": report.converged,
            }

        for seed in (0, 7):
            assert run(True, seed) == run(False, seed)

    @DIFFERENTIAL_SETTINGS
    @given(
        query=queries(negation=True),
        database=databases(),
        seed=st.integers(0, 2**16),
    )
    def test_randomized_cleaning_identical(self, query, database, seed):
        """Full-loop differential over *randomized* instances: the
        incremental and full-evaluation modes must produce identical
        answers, edits, and oracle-question logs."""
        ground_truth = database
        dirty_base = _corrupt(database, seed)

        def run(use_incremental: bool):
            dirty = dirty_base.copy()
            oracle = AccountingOracle(PerfectOracle(ground_truth))
            config = QOCOConfig(
                seed=seed, max_iterations=4, use_incremental=use_incremental
            )
            report = QOCO(dirty, oracle, config).clean(query)
            return {
                "answers": evaluate(query, dirty),
                "edits": [(e.kind.value, e.fact) for e in report.edits],
                "log": report.log.to_dicts(),
                "converged": report.converged,
            }

        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# telemetry accounting
# ---------------------------------------------------------------------------


class TestIncrementalTelemetry:
    def test_counters_flow_during_cleaning(self):
        from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth

        with telemetry_session() as (hub, _):
            oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
            report = QOCO(figure1_dirty(), oracle, QOCOConfig(seed=1)).clean(EX1)
            assert report.converged
            # construction recomputes once; every effective edit is a delta
            assert hub.counter("incremental.full_recompute") == 1
            assert hub.counter("incremental.delta_applied") == len(
                [e for e in report.edits]
            )
            assert hub.counter("incremental.answers_touched") >= 1

    def test_delta_histogram_observed(self, fig1_dirty):
        with telemetry_session() as (hub, _):
            IncrementalAnswers(EX1, fig1_dirty)
            fig1_dirty.insert(
                fact("games", "01.01.2030", "GER", "BRA", "Final", "2:1")
            )
            assert hub.histogram("incremental.delta_assignments").count == 1
