"""Unit tests for the crowd-of-experts oracle."""

import random

import pytest

from repro.db.tuples import fact
from repro.oracle.aggregator import MajorityVote
from repro.oracle.crowd import Crowd
from repro.oracle.imperfect import ImperfectOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import (
    CATEGORY_FILL_MISSING,
    CATEGORY_VERIFY_ANSWERS,
    CATEGORY_VERIFY_TUPLES,
)
from repro.query.ast import Var
from repro.query.evaluator import witness_of
from repro.workloads import EX1


def perfect_crowd(gt, n=3):
    return Crowd([PerfectOracle(gt) for _ in range(n)], MajorityVote(n))


def noisy_crowd(gt, p, n=3, seed=0):
    rng = random.Random(seed)
    members = [
        ImperfectOracle(gt, p, random.Random(rng.randrange(1 << 30)))
        for _ in range(n)
    ]
    return Crowd(members, MajorityVote(n))


class TestClosedQuestions:
    def test_perfect_crowd_correct(self, fig1_gt):
        crowd = perfect_crowd(fig1_gt)
        assert crowd.verify_fact(fact("teams", "ESP", "EU")) is True
        assert crowd.verify_fact(fact("teams", "BRA", "EU")) is False
        assert crowd.verify_answer(EX1, ("ITA",)) is True

    def test_early_stop_counts_two_answers(self, fig1_gt):
        crowd = perfect_crowd(fig1_gt)
        crowd.verify_fact(fact("teams", "ESP", "EU"))
        assert crowd.stats.answers[CATEGORY_VERIFY_TUPLES] == 2

    def test_majority_beats_one_liar(self, fig1_gt):
        liar = ImperfectOracle(fig1_gt, 1.0, random.Random(0))
        honest = [PerfectOracle(fig1_gt), PerfectOracle(fig1_gt)]
        crowd = Crowd([liar] + honest, MajorityVote(3))
        # regardless of rotation, 2 honest answers outvote the liar
        for _ in range(6):
            assert crowd.verify_fact(fact("teams", "ESP", "EU")) is True

    def test_answer_categories_tracked(self, fig1_gt):
        crowd = perfect_crowd(fig1_gt)
        crowd.verify_answer(EX1, ("GER",))
        crowd.verify_candidate(EX1, {Var("x"): "GER"})
        assert crowd.stats.answers[CATEGORY_VERIFY_ANSWERS] == 2
        assert crowd.stats.answers[CATEGORY_VERIFY_TUPLES] == 2

    def test_empty_crowd_rejected(self):
        with pytest.raises(ValueError):
            Crowd([])


class TestOpenQuestions:
    def test_completion_verified_and_returned(self, fig1_gt):
        crowd = perfect_crowd(fig1_gt)
        reply = crowd.complete_assignment(EX1, {Var("x"): "ITA"})
        assert reply is not None
        for f in witness_of(EX1, reply):
            assert f in fig1_gt
        # fill cost plus follow-up verification answers were counted
        assert crowd.stats.answers[CATEGORY_FILL_MISSING] >= 1
        assert crowd.stats.answers[CATEGORY_VERIFY_TUPLES] >= 2

    def test_null_completion_costs_one(self, fig1_gt):
        crowd = perfect_crowd(fig1_gt)
        assert crowd.complete_assignment(EX1, {Var("x"): "ESP"}) is None
        assert crowd.stats.answers[CATEGORY_FILL_MISSING] == 1

    def test_complete_result_verified(self, fig1_gt):
        crowd = perfect_crowd(fig1_gt)
        assert crowd.complete_result(EX1, [("GER",)]) == ("ITA",)
        assert crowd.stats.answers[CATEGORY_VERIFY_ANSWERS] == 2

    def test_lying_completion_rejected(self, fig1_gt):
        # One member always corrupts open answers; the majority verification
        # layer must reject bad completions rather than accept them.
        liar = ImperfectOracle(fig1_gt, 1.0, random.Random(1))
        honest = PerfectOracle(fig1_gt)
        crowd = Crowd([liar, honest, PerfectOracle(fig1_gt)], MajorityVote(3))
        for _ in range(8):
            reply = crowd.complete_assignment(EX1, {Var("x"): "ITA"})
            if reply is None:
                continue  # rejected or withheld — fine
            for f in witness_of(EX1, reply):
                assert f in fig1_gt  # accepted replies are all-true

    def test_fabricated_result_rejected(self, fig1_gt):
        liar = ImperfectOracle(fig1_gt, 1.0, random.Random(2))
        crowd = Crowd(
            [liar, PerfectOracle(fig1_gt), PerfectOracle(fig1_gt)], MajorityVote(3)
        )
        for _ in range(8):
            reply = crowd.complete_result(EX1, [("GER",)])
            assert reply in (None, ("ITA",))

    def test_verification_can_be_disabled(self, fig1_gt):
        crowd = Crowd(
            [PerfectOracle(fig1_gt)], MajorityVote(1), verify_open_answers=False
        )
        reply = crowd.complete_result(EX1, [("GER",)])
        assert reply == ("ITA",)
        assert crowd.stats.answers[CATEGORY_VERIFY_ANSWERS] == 0


class TestRotation:
    def test_open_questions_rotate_members(self, fig1_gt):
        calls = []

        class Tracking(PerfectOracle):
            def __init__(self, gt, tag):
                super().__init__(gt)
                self.tag = tag

            def complete_result(self, query, known):
                calls.append(self.tag)
                return super().complete_result(query, known)

        crowd = Crowd(
            [Tracking(fig1_gt, i) for i in range(3)],
            MajorityVote(3),
            verify_open_answers=False,
        )
        for _ in range(3):
            crowd.complete_result(EX1, [("GER",)])
        assert sorted(calls) == [0, 1, 2]
