"""Unit tests for blocking-key partitioning (`repro.shard.partition`)."""

from __future__ import annotations

import zlib

import pytest

from repro.datasets.worldcup import (
    WorldCupConfig,
    worldcup_database,
    worldcup_partition_spec,
    worldcup_years,
)
from repro.db.database import Database
from repro.db.schema import RelationSchema, Schema
from repro.db.tuples import Fact
from repro.durability.codec import canonical_json
from repro.query.parser import parse_query
from repro.shard import (
    KeySpec,
    PartitionSpec,
    ShardingError,
    payload_to_database,
    shard_of_key,
)

SCHEMA = Schema(
    [
        RelationSchema("m", ("k", "x")),
        RelationSchema("lab", ("x", "y")),
    ]
)

SPEC = PartitionSpec((KeySpec("m", 0),))


def _db(m_rows, lab_rows):
    return Database(
        SCHEMA,
        [Fact("m", tuple(row)) for row in m_rows]
        + [Fact("lab", tuple(row)) for row in lab_rows],
    )


class TestShardOfKey:
    def test_stable_across_processes(self):
        # crc32 of the canonical JSON — a frozen contract: changing it
        # would re-shard persisted partitions
        for key in (1930, "BRA", 3.5, None):
            expected = zlib.crc32(canonical_json(key).encode("utf-8")) % 7
            assert shard_of_key(key, 7) == expected

    def test_keyed_by_canonical_form_not_python_equality(self):
        # 4 and 4.0 serialize differently, so they may land on different
        # shards — key extractors must normalize (cf. the "year"
        # extractor returning int for both str and int dates)
        assert shard_of_key(4, 5) == shard_of_key(4, 5)
        assert KeySpec("games", 0, "year").key_of(
            Fact("games", ("13.07.2014",))
        ) == KeySpec("games", 0, "year").key_of(Fact("games", (2014,)))

    def test_range(self):
        for key in range(50):
            assert 0 <= shard_of_key(key, 4) < 4


class TestKeySpec:
    def test_identity_extractor(self):
        spec = KeySpec("m", 0)
        assert spec.key_of(Fact("m", (7, "a"))) == 7

    def test_year_extractor(self):
        spec = KeySpec("games", 0, "year")
        assert spec.key_of(Fact("games", ("13.07.2014", "GER"))) == 2014
        assert spec.key_of(Fact("games", (1998, "FRA"))) == 1998

    def test_unknown_extractor_rejected(self):
        with pytest.raises(ShardingError, match="unknown key extractor"):
            KeySpec("m", 0, "nope")


class TestPartitionSpec:
    def test_duplicate_relation_rejected(self):
        with pytest.raises(ShardingError, match="duplicate"):
            PartitionSpec((KeySpec("m", 0), KeySpec("m", 1)))

    def test_replicated_relations_have_no_shard(self):
        assert SPEC.shard_of(Fact("lab", ("a", "b")), 4) is None
        assert SPEC.key_of(Fact("lab", ("a", "b"))) is None

    def test_roundtrips_through_obj(self):
        spec = worldcup_partition_spec()
        assert PartitionSpec.from_obj(spec.to_obj()) == spec

    def test_partition_is_a_disjoint_cover(self):
        db = _db([(k, "x") for k in range(20)], [("x", "y")])
        shards = SPEC.partition_database(db, 4)
        seen = set()
        for shard_db in shards:
            m_facts = shard_db.facts("m")
            assert not (seen & m_facts)
            seen |= m_facts
            # replicated relation is complete everywhere
            assert shard_db.facts("lab") == db.facts("lab")
        assert seen == db.facts("m")

    def test_payload_roundtrip_preserves_digest(self):
        db = _db([(k, "x") for k in range(9)], [("x", "y"), ("z", "w")])
        payloads = SPEC.partition_payloads(db, 1)
        assert payload_to_database(payloads[0]).state_digest() == db.state_digest()

    def test_facts_land_on_their_key_shard(self):
        db = _db([(k, "x") for k in range(20)], [])
        shards = SPEC.partition_database(db, 3)
        for index, shard_db in enumerate(shards):
            for f in shard_db.facts("m"):
                assert shard_of_key(f.values[0], 3) == index


class TestShardability:
    def test_no_partitioned_atoms_is_shardable(self):
        q = parse_query("q(x) :- lab(x, y).")
        assert SPEC.is_shardable(q)

    def test_single_partitioned_atom_is_shardable(self):
        q = parse_query("q(k) :- m(k, x), lab(x, y).")
        assert SPEC.is_shardable(q)

    def test_shared_key_term_is_shardable(self):
        spec = PartitionSpec((KeySpec("m", 0), KeySpec("lab", 0)))
        q = parse_query("q(k) :- m(k, x), lab(k, y).")
        assert spec.is_shardable(q)

    def test_join_across_keys_is_not_shardable(self):
        spec = PartitionSpec((KeySpec("m", 0), KeySpec("lab", 0)))
        q = parse_query("q(k) :- m(k, x), lab(x, y).")
        assert not spec.is_shardable(q)
        with pytest.raises(ShardingError, match="not shardable"):
            spec.require_shardable(q)

    def test_negated_partitioned_atom_with_same_key_is_shardable(self):
        q = parse_query("q(k, x) :- m(k, x), not m(k, \"a\").")
        assert SPEC.is_shardable(q)

    def test_negated_partitioned_atom_alone_is_not_shardable(self):
        q = parse_query("q(x) :- lab(x, y), not m(x, x).")
        assert not SPEC.is_shardable(q)

    def test_worldcup_workloads(self):
        spec = worldcup_partition_spec()
        q3 = parse_query(
            'q3(x) :- games(d1, x, y, s1, u1), stages(s1, "KO"), teams(x, c), '
            'c != "AS".'
        )
        assert spec.is_shardable(q3)
        # goals joined to games on the date: same key term, shardable
        scorers = parse_query("q(p) :- goals(p, d), games(d, w, r, s, u).")
        assert spec.is_shardable(scorers)
        # goals joined on a different date than the game: not shardable
        cross = parse_query("q(p) :- goals(p, d1), games(d2, w, r, s, u).")
        assert not spec.is_shardable(cross)


class TestWorldCupScaling:
    def test_replicas_scale_fact_relations_only(self):
        base = worldcup_database(WorldCupConfig())
        scaled = worldcup_database(WorldCupConfig(replicas=3))
        assert len(scaled.facts("games")) == 3 * len(base.facts("games"))
        assert len(scaled.facts("goals")) == 3 * len(base.facts("goals"))
        assert scaled.facts("teams") == base.facts("teams")
        assert scaled.facts("players") == base.facts("players")

    def test_replica_years_are_fresh_blocks(self):
        config = WorldCupConfig(replicas=2)
        years = worldcup_years(config)
        assert len(years) == len(set(years)) == 40
        assert 1930 in years and 2030 in years

    def test_replicated_database_partitions_without_loss(self):
        config = WorldCupConfig(replicas=2)
        db = worldcup_database(config)
        shards = worldcup_partition_spec().partition_database(db, 4)
        assert sum(len(s.facts("games")) for s in shards) == len(db.facts("games"))
        assert sum(len(s.facts("goals")) for s in shards) == len(db.facts("goals"))
