"""The docs/tutorial.md walkthrough, executed end to end.

Keeps the tutorial honest: the movie example is built here exactly as
the document describes and every step must behave as narrated.
"""

import random

import pytest

from repro import (
    AccountingOracle,
    Crowd,
    ImperfectOracle,
    MajorityVote,
    PerfectOracle,
    QOCO,
    QOCOConfig,
)
from repro.core import ConstraintCleaner, MinCutSplit, QOCOMinusDeletion
from repro.db import (
    Database,
    ForeignKey,
    Key,
    ConstraintSet,
    RelationSchema,
    Schema,
    fact,
    load_csv,
    save_csv,
)
from repro.query import evaluate, parse_query
from repro.views import ViewManager


@pytest.fixture
def schema():
    return Schema(
        [
            RelationSchema("movies", ("title", "director", "year")),
            RelationSchema("awards", ("title", "award")),
        ]
    )


@pytest.fixture
def ground_truth(schema):
    return Database(
        schema,
        [
            fact("movies", "Alien", "Ridley Scott", 1979),
            fact("movies", "Blade Runner", "Ridley Scott", 1982),
            fact("movies", "Heat", "Michael Mann", 1995),
            fact("awards", "Alien", "Oscar-VFX"),
            fact("awards", "Blade Runner", "Hugo"),
        ],
    )


@pytest.fixture
def dirty(schema):
    return Database(
        schema,
        [
            fact("movies", "Alien", "Ridley Scott", 1979),
            fact("movies", "Blade Runner", "Ridley Scott", 1982),
            fact("movies", "Heat", "Michael Mann", 1995),
            fact("movies", "Heat 2", "Michael Mann", 1999),  # false
            fact("awards", "Alien", "Oscar-VFX"),
            # awards(Blade Runner, Hugo) missing
        ],
    )


AWARDED = parse_query("q(t, d) :- movies(t, d, y), awards(t, a).")
SNUBBED = parse_query("q(t) :- movies(t, d, y), not awards(t, a).")


class TestTutorialSteps:
    def test_step1_2_schema_queries(self, ground_truth):
        assert evaluate(AWARDED, ground_truth) == {
            ("Alien", "Ridley Scott"),
            ("Blade Runner", "Ridley Scott"),
        }
        assert evaluate(SNUBBED, ground_truth) == {("Heat",)}

    def test_step1_csv_round_trip(self, ground_truth, tmp_path):
        save_csv(ground_truth, tmp_path / "my_movies")
        assert load_csv(tmp_path / "my_movies") == ground_truth

    def test_step3_clean_against_ground_truth(self, dirty, ground_truth, tmp_path):
        oracle = AccountingOracle(PerfectOracle(ground_truth))
        report = QOCO(dirty, oracle).clean(AWARDED)
        assert evaluate(AWARDED, dirty) == evaluate(AWARDED, ground_truth)
        assert "wrong removed" in report.summary()
        oracle.log.save_json(tmp_path / "audit.json")
        assert (tmp_path / "audit.json").exists()

    def test_step5_crowd(self, dirty, ground_truth):
        members = [
            ImperfectOracle(ground_truth, 0.1, rng=random.Random(i))
            for i in range(3)
        ]
        crowd = Crowd(members, MajorityVote(sample_size=3))
        QOCO(dirty, AccountingOracle(crowd), QOCOConfig(seed=0)).clean(AWARDED)
        assert crowd.stats.total > 0

    def test_step6_strategy_config(self, dirty, ground_truth):
        config = QOCOConfig(deletion="qoco-", split="mincut", seed=7)
        assert isinstance(config.deletion_strategy, QOCOMinusDeletion)
        assert isinstance(config.split_strategy, MinCutSplit)
        oracle = AccountingOracle(PerfectOracle(ground_truth))
        QOCO(dirty, oracle, config).clean(AWARDED)
        assert evaluate(AWARDED, dirty) == evaluate(AWARDED, ground_truth)

    def test_step7_constraints(self, dirty, ground_truth):
        constraints = ConstraintSet(
            keys=[Key("movies", (0,))],
            foreign_keys=[ForeignKey("awards", (0,), "movies", (0,))],
        )
        dirty.insert(fact("awards", "Ghost Movie", "Oscar"))  # dangling
        cleaner = ConstraintCleaner(
            dirty, AccountingOracle(PerfectOracle(ground_truth)), constraints
        )
        cleaner.repair()
        assert constraints.is_satisfied(dirty)

    def test_step8_view_monitoring(self, dirty, ground_truth):
        manager = ViewManager(dirty)
        view = manager.register(AWARDED)
        scratch = dirty.copy()
        oracle = AccountingOracle(PerfectOracle(ground_truth))
        report = QOCO(scratch, oracle).clean(AWARDED)
        manager.apply(report.edits)
        assert view.answers() == evaluate(AWARDED, dirty)
        assert view.answers() == evaluate(AWARDED, ground_truth)

    def test_negation_cleaning_on_tutorial_data(self, dirty, ground_truth):
        from repro.core import remove_wrong_answer_with_negation

        # "Blade Runner" shows as snubbed in the dirty DB because its
        # award row is missing; the two-sided removal inserts it.
        assert ("Blade Runner",) in evaluate(SNUBBED, dirty)
        oracle = AccountingOracle(PerfectOracle(ground_truth))
        remove_wrong_answer_with_negation(
            SNUBBED, dirty, ("Blade Runner",), oracle, random.Random(0)
        )
        assert ("Blade Runner",) not in evaluate(SNUBBED, dirty)
        assert fact("awards", "Blade Runner", "Hugo") in dirty
