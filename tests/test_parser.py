"""Unit tests for the datalog-style query parser."""

import pytest

from repro.query.ast import Atom, Inequality, Var
from repro.query.parser import ParseError, parse_queries, parse_query


class TestBasics:
    def test_simple_query(self):
        q = parse_query('q(x) :- teams(x, "EU").')
        assert q.name == "q"
        assert q.head == (Var("x"),)
        assert q.atoms == (Atom("teams", (Var("x"), "EU")),)

    def test_anonymous_head(self):
        q = parse_query("(x) :- r(x).")
        assert q.name == "ans"

    def test_trailing_period_optional(self):
        assert parse_query("q(x) :- r(x)") == parse_query("q(x) :- r(x).")

    def test_inequality(self):
        q = parse_query("q(x) :- r(x, y), x != y.")
        assert q.inequalities == (Inequality(Var("x"), Var("y")),)

    def test_inequality_with_constant(self):
        q = parse_query('q(x) :- teams(x, c), c != "AS".')
        assert q.inequalities == (Inequality(Var("c"), "AS"),)

    def test_numbers(self):
        q = parse_query("q(x) :- players(x, 1992).")
        assert q.atoms[0].terms == (Var("x"), 1992)

    def test_floats(self):
        q = parse_query("q(x) :- r(x, 4.5).")
        assert q.atoms[0].terms == (Var("x"), 4.5)

    def test_negative_numbers(self):
        q = parse_query("q(x) :- r(x, -3).")
        assert q.atoms[0].terms == (Var("x"), -3)

    def test_string_with_spaces_and_colon(self):
        q = parse_query('q(x) :- games(x, "1:0").')
        assert q.atoms[0].terms[1] == "1:0"

    def test_escaped_quote(self):
        q = parse_query('q(x) :- r(x, "a\\"b").')
        assert q.atoms[0].terms[1] == 'a"b'

    def test_multiline(self):
        q = parse_query(
            """
            q(x) :- games(d1, x, y),
                    games(d2, x, z),
                    d1 != d2.
            """
        )
        assert len(q.atoms) == 2
        assert len(q.inequalities) == 1

    def test_head_constant(self):
        q = parse_query('q("GER", x) :- r(x).')
        assert q.head == ("GER", Var("x"))


class TestRoundTrip:
    CASES = [
        'q1(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
        'teams(x, "EU"), d1 != d2.',
        "q(x, y) :- r(x), s(y), x != y.",
        'q(x) :- r(x, 42, "hello world").',
        "ans(x) :- r(x).",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        q = parse_query(text)
        assert parse_query(str(q)) == q


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "q(x)",  # no body
            "q(x) :- ",  # empty body
            "q(x) :- r(x",  # unclosed paren
            "q(x) :- r(x)) extra",  # trailing garbage
            "q(x) :- x != y.",  # inequality vars not in atoms
            "q(z) :- r(x).",  # unsafe head
            "q(x) :- r(x) r(y).",  # missing comma
            "q(x) :- @(x).",  # bad character
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(Exception):
            parse_query(bad)

    def test_parse_error_reports_offset(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("q(x) :- @(x).")
        assert "offset" in str(excinfo.value)


class TestParseQueries:
    def test_multiple(self):
        queries = parse_queries(
            """
            % a comment
            q1(x) :- r(x).

            q2(y) :- s(y).
            """
        )
        assert [q.name for q in queries] == ["q1", "q2"]

    def test_multiline_query_in_batch(self):
        queries = parse_queries("q(x) :- r(x),\n s(x).")
        assert len(queries) == 1
        assert len(queries[0].atoms) == 2

    def test_empty_input(self):
        assert parse_queries("") == []
