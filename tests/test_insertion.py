"""Unit tests for Algorithm 2 (CrowdAddMissingAnswer)."""

import random

import pytest

from repro.core.insertion import (
    InsertionConfig,
    InsertionError,
    crowd_add_missing_answer,
)
from repro.core.split import (
    MinCutSplit,
    NaiveSplit,
    ProvenanceSplit,
    RandomSplit,
)
from repro.datasets.figure1 import ITA_EU
from repro.db.edits import EditKind
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.evaluator import evaluate
from repro.workloads import EX1, EX2


@pytest.fixture
def oracle(fig1_gt):
    return AccountingOracle(PerfectOracle(fig1_gt))


ALL_SPLITS = [ProvenanceSplit, MinCutSplit, RandomSplit, NaiveSplit]


class TestAddsMissingAnswer:
    @pytest.mark.parametrize("split_cls", ALL_SPLITS)
    def test_pirlo_added(self, split_cls, fig1_dirty, oracle):
        # Example 5.4: (Pirlo) is missing because Teams(ITA, EU) is.
        assert ("Andrea Pirlo",) not in evaluate(EX2, fig1_dirty)
        edits = crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            split_cls(), random.Random(0),
        )
        assert ("Andrea Pirlo",) in evaluate(EX2, fig1_dirty)
        assert edits

    @pytest.mark.parametrize("split_cls", ALL_SPLITS)
    def test_only_true_facts_inserted(self, split_cls, fig1_dirty, fig1_gt, oracle):
        edits = crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            split_cls(), random.Random(0),
        )
        for edit in edits:
            assert edit.kind is EditKind.INSERT
            assert edit.fact in fig1_gt

    def test_example_5_4_inserts_exactly_teams_ita(self, fig1_dirty, oracle):
        # The paper's conclusion: only Teams(ITA, EU) needs inserting.
        edits = crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            ProvenanceSplit(), random.Random(0),
        )
        assert [e.fact for e in edits] == [ITA_EU]

    def test_missing_answer_for_ex1(self, fig1_dirty, oracle):
        crowd_add_missing_answer(
            EX1, fig1_dirty, ("ITA",), oracle, ProvenanceSplit(), random.Random(0)
        )
        assert ("ITA",) in evaluate(EX1, fig1_dirty)


class TestGroundAtomShortcut:
    def test_ground_atoms_inserted_without_questions(self, fig1_gt, oracle):
        # If every body atom grounds out under t, the witness is implied:
        # no crowd questions needed beyond nothing at all.
        from repro.datasets.figure1 import figure1_dirty
        from repro.query.parser import parse_query

        db = figure1_dirty()
        q = parse_query("q(x, c) :- teams(x, c).")
        crowd_add_missing_answer(
            q, db, ("ITA", "EU"), oracle, ProvenanceSplit(), random.Random(0)
        )
        assert ITA_EU in db
        assert oracle.log.question_count == 0


class TestQuestionEconomy:
    def test_split_beats_naive(self, fig1_gt):
        from repro.datasets.figure1 import figure1_dirty

        costs = {}
        for split_cls in (ProvenanceSplit, NaiveSplit):
            oracle = AccountingOracle(PerfectOracle(fig1_gt))
            db = figure1_dirty()
            crowd_add_missing_answer(
                EX2, db, ("Andrea Pirlo",), oracle, split_cls(), random.Random(0)
            )
            costs[split_cls.__name__] = oracle.log.total_cost
        assert costs["ProvenanceSplit"] < costs["NaiveSplit"]

    def test_naive_cost_is_all_variables(self, fig1_dirty, oracle):
        # Naive asks for the whole witness: |Var(EX2|t)| variables filled.
        crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle, NaiveSplit(), random.Random(0)
        )
        open_cost = oracle.log.cost_of([QuestionKind.COMPLETE_ASSIGNMENT])
        assert open_cost == 6  # y, z, w, d, v, u

    def test_provenance_uses_candidate_verification(self, fig1_dirty, oracle):
        crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            ProvenanceSplit(), random.Random(0),
        )
        assert oracle.log.count_of([QuestionKind.VERIFY_CANDIDATE]) >= 1


class TestEdgeCases:
    def test_answer_already_present_is_noop(self, fig1_dirty, oracle):
        edits = crowd_add_missing_answer(
            EX2, fig1_dirty, ("Mario Goetze",), oracle,
            ProvenanceSplit(), random.Random(0),
        )
        assert edits == []
        assert oracle.log.question_count == 0

    def test_unhelpful_crowd_raises(self, fig1_dirty, fig1_gt):
        class SilentOracle(PerfectOracle):
            def verify_candidate(self, query, partial):
                return False

            def complete_assignment(self, query, partial):
                return None

        oracle = AccountingOracle(SilentOracle(fig1_gt))
        with pytest.raises(InsertionError):
            crowd_add_missing_answer(
                EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
                ProvenanceSplit(), random.Random(0),
            )

    def test_config_caps_respected(self, fig1_dirty, fig1_gt):
        oracle = AccountingOracle(PerfectOracle(fig1_gt))
        config = InsertionConfig(max_candidates_per_subquery=1, max_subqueries=2)
        crowd_add_missing_answer(
            EX2, fig1_dirty, ("Andrea Pirlo",), oracle,
            ProvenanceSplit(), random.Random(0), config,
        )
        # even with tiny caps the fallback still completes the insertion
        assert ("Andrea Pirlo",) in evaluate(EX2, fig1_dirty)

    def test_mismatched_answer_rejected(self, fig1_dirty, oracle):
        from repro.query.ast import QueryError

        with pytest.raises(QueryError):
            crowd_add_missing_answer(
                EX2, fig1_dirty, ("a", "b"), oracle, ProvenanceSplit(), random.Random(0)
            )
