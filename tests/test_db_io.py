"""Tests for database persistence (CSV directory and JSON)."""

import pytest

from repro.db.database import Database
from repro.db.io import coerce_value, load_csv, load_json, save_csv, save_json
from repro.db.schema import Schema, SchemaError, RelationSchema
from repro.db.tuples import fact


@pytest.fixture
def db():
    schema = Schema(
        [
            RelationSchema("teams", ("team", "continent"), ("team", "cont")),
            RelationSchema("players", ("name", "team", "birth_year")),
        ]
    )
    return Database(
        schema,
        [
            fact("teams", "GER", "EU"),
            fact("teams", "BRA", "SA"),
            fact("players", "Pele", "BRA", 1940),
            fact("players", "Mario Goetze", "GER", 1992),
        ],
    )


class TestCoerceValue:
    def test_int(self):
        assert coerce_value("1992") == 1992

    def test_float(self):
        assert coerce_value("4.5") == 4.5

    def test_string(self):
        assert coerce_value("13.07.2014") == "13.07.2014"  # not a float!
        assert coerce_value("GER") == "GER"


class TestCsvRoundTrip:
    def test_round_trip(self, db, tmp_path):
        save_csv(db, tmp_path / "out")
        loaded = load_csv(tmp_path / "out")
        assert loaded == db
        assert loaded.schema == db.schema

    def test_domain_tags_preserved(self, db, tmp_path):
        save_csv(db, tmp_path / "out")
        loaded = load_csv(tmp_path / "out")
        assert loaded.schema.relation("teams").domains == ("team", "cont")

    def test_types_survive(self, db, tmp_path):
        save_csv(db, tmp_path / "out")
        loaded = load_csv(tmp_path / "out")
        assert fact("players", "Pele", "BRA", 1940) in loaded  # int, not "1940"

    def test_missing_schema_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            load_csv(tmp_path)

    def test_header_mismatch_rejected(self, db, tmp_path):
        save_csv(db, tmp_path / "out")
        csv_file = tmp_path / "out" / "teams.csv"
        content = csv_file.read_text().splitlines()
        content[0] = "wrong,header"
        csv_file.write_text("\n".join(content))
        with pytest.raises(SchemaError):
            load_csv(tmp_path / "out")

    def test_missing_relation_file_means_empty(self, db, tmp_path):
        save_csv(db, tmp_path / "out")
        (tmp_path / "out" / "players.csv").unlink()
        loaded = load_csv(tmp_path / "out")
        assert loaded.size("players") == 0
        assert loaded.size("teams") == 2


class TestJsonRoundTrip:
    def test_round_trip(self, db, tmp_path):
        save_json(db, tmp_path / "db.json")
        loaded = load_json(tmp_path / "db.json")
        assert loaded == db
        assert loaded.schema == db.schema

    def test_worldcup_round_trip(self, worldcup_gt, tmp_path):
        save_json(worldcup_gt, tmp_path / "wc.json")
        loaded = load_json(tmp_path / "wc.json")
        assert loaded == worldcup_gt

    def test_cleaning_works_on_loaded_db(self, tmp_path, fig1_dirty, fig1_gt):
        from repro.core.qoco import QOCO
        from repro.oracle.base import AccountingOracle
        from repro.oracle.perfect import PerfectOracle
        from repro.query.evaluator import evaluate
        from repro.workloads import EX1

        save_json(fig1_dirty, tmp_path / "dirty.json")
        save_json(fig1_gt, tmp_path / "gt.json")
        dirty = load_json(tmp_path / "dirty.json")
        gt = load_json(tmp_path / "gt.json")
        QOCO(dirty, AccountingOracle(PerfectOracle(gt))).clean(EX1)
        assert evaluate(EX1, dirty) == evaluate(EX1, gt)
